//! Enumerating `⟦M⟧(D)` with logarithmic delay, Theorem 8.10:
//! preprocessing `O(|M| + size(S)·q³)`, delay `O(depth(S)·|X|)` — i.e.
//! `O(|X|·log d)` once the SLP is balanced (Theorem 4.3).
//!
//! The algorithm enumerates `(M,S)`-trees (Section 8): small ordered binary
//! trees (at most `4·|X|·depth(S)` nodes, Lemma 8.4) that describe *which*
//! intermediate automaton states an accepting run passes through at the
//! boundaries of the SLP's non-terminals.  Every tree is produced by the
//! recursive generator `EnumAll` (Algorithm 1); the partial marker sets in a
//! tree's *yield* (Definition 8.1) are then read off by combining the
//! precomputed leaf tables `M_{T_x}` with the position shifts stored on the
//! tree's right-child arcs (Lemma 8.5).  For deterministic automata the
//! yields of distinct trees are disjoint (Lemma 8.8), so the enumeration is
//! duplicate-free.

use crate::error::EvalError;
use crate::matrices::{Preprocessed, REntry};
use crate::prepared::PreparedEvaluation;
use slp::NormalFormSlp;
use spanner::{PartialMarkerSet, SpanTuple, SpannerAutomaton};

/// An enumerator for `⟦M⟧(D)` over an SLP-compressed document.
///
/// Construction runs the preprocessing once; [`Enumerator::iter`] then
/// starts an enumeration with `O(depth(S)·|X|)` delay per result.
#[derive(Debug)]
pub struct Enumerator {
    prepared: PreparedEvaluation,
}

impl Enumerator {
    /// Prepares the enumeration of `⟦M⟧(D)` (Theorem 8.10).
    ///
    /// Fails with [`EvalError::NondeterministicAutomaton`] if the automaton
    /// is not deterministic: determinism is what guarantees a duplicate-free
    /// enumeration (Lemma 8.8).  Either call
    /// [`SpannerAutomaton::determinized`] first or opt into duplicates with
    /// [`Enumerator::new_allow_duplicates`].
    pub fn new(
        automaton: &SpannerAutomaton<u8>,
        document: &NormalFormSlp<u8>,
    ) -> Result<Self, EvalError> {
        let prepared = PreparedEvaluation::new(automaton, document)?;
        if !prepared.deterministic() {
            return Err(EvalError::NondeterministicAutomaton);
        }
        Ok(Enumerator { prepared })
    }

    /// Prepares an enumeration for a possibly non-deterministic automaton.
    /// The same set `⟦M⟧(D)` is enumerated with the same delay bounds, but
    /// individual results may appear more than once (final remark of
    /// Section 8 in the paper).
    pub fn new_allow_duplicates(
        automaton: &SpannerAutomaton<u8>,
        document: &NormalFormSlp<u8>,
    ) -> Result<Self, EvalError> {
        let prepared = PreparedEvaluation::new(automaton, document)?;
        Ok(Enumerator { prepared })
    }

    /// Wraps an existing prepared evaluation.
    pub fn from_prepared(prepared: PreparedEvaluation) -> Self {
        Enumerator { prepared }
    }

    /// The prepared evaluation backing this enumerator.
    pub fn prepared(&self) -> &PreparedEvaluation {
        &self.prepared
    }

    /// Starts an enumeration of `⟦M⟧(D)`.
    pub fn iter(&self) -> Enumeration<'_> {
        Enumeration::from_prepared(&self.prepared)
    }
}

/// An `(M,S)`-tree (Section 8), reduced to exactly the information its yield
/// needs: terminal leaves carry the `(T_x, i, j)` triple addressing the
/// precomputed list `M_{T_x}[i,j]`, inner nodes carry the shift `|D(B)|`
/// stored on the arc to their right child.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tree {
    /// `A⟨i▷j, ℮⟩`: yield `{∅}`.
    EmptyLeaf,
    /// `T_x⟨i▷j, 1⟩`: yield `M_{T_x}[i,j]`.
    TerminalLeaf { nt: u32, i: usize, j: usize },
    /// `A⟨i▷k▷j⟩` with children for `B` (left) and `C` (right).
    Inner {
        shift: u64,
        left: Box<Tree>,
        right: Box<Tree>,
    },
}

/// The lazily evaluated enumeration of `⟦M⟧(D)`.
pub struct Enumeration<'a> {
    num_vars: usize,
    /// Outer iterator over `(M, S₀)`-trees (EnumSingleRoot for every
    /// `j ∈ F'` and `k ∈ Ī_{S₀}[q₀, j]`, Theorem 8.10).
    trees: Box<dyn Iterator<Item = Tree> + 'a>,
    /// Yield odometer of the current tree (EnumSingleTree).
    current: Option<YieldIter<'a>>,
    pre: &'a Preprocessed,
}

impl<'a> Enumeration<'a> {
    /// Starts an enumeration from a prepared evaluation.
    pub fn from_prepared(prepared: &'a PreparedEvaluation) -> Self {
        Self::from_matrices(&prepared.pre)
    }

    /// Starts an enumeration directly from the preprocessed matrices of a
    /// (query, document) pair — the engine-facing entry point.
    pub fn from_matrices(pre: &'a Preprocessed) -> Self {
        let start_nt = pre.start_nt;
        let q0 = pre.nfa_start;
        let finals = pre.reachable_accepting();
        let trees: Box<dyn Iterator<Item = Tree> + 'a> =
            Box::new(finals.into_iter().flat_map(move |j| {
                pre.i_bar(start_nt, q0, j)
                    .into_iter()
                    .flat_map(move |k| enum_all(pre, start_nt, q0, k, j))
            }));
        Enumeration {
            num_vars: pre.num_vars,
            trees,
            current: None,
            pre,
        }
    }
}

impl Iterator for Enumeration<'_> {
    type Item = SpanTuple;

    fn next(&mut self) -> Option<SpanTuple> {
        loop {
            if let Some(yields) = &mut self.current {
                if let Some(markers) = yields.next() {
                    return Some(
                        SpanTuple::from_marker_set(&markers, self.num_vars)
                            .expect("accepted subword-marked words encode valid span-tuples"),
                    );
                }
                self.current = None;
            }
            // Fetch the next (M,S₀)-tree; its yield is never empty, so the
            // loop advances by at least one output per tree.
            let tree = self.trees.next()?;
            self.current = Some(YieldIter::new(self.pre, tree));
        }
    }
}

impl std::fmt::Debug for Enumeration<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Enumeration")
            .field("num_vars", &self.num_vars)
            .finish_non_exhaustive()
    }
}

/// `EnumAll(A, i, k, j)` (Algorithm 1): lazily enumerates all `(M,A)`-trees
/// with root `A⟨i▷k▷j⟩` (or the single base-case leaf when `k` is `None`).
///
/// The nesting of iterators mirrors the nesting of the algorithm's loops,
/// so the delay between two trees is proportional to the maximum tree size,
/// i.e. `O(|X|·depth(A))` (Lemma 8.9 with Lemma 8.4).
fn enum_all<'a>(
    pre: &'a Preprocessed,
    a: u32,
    i: usize,
    k: Option<usize>,
    j: usize,
) -> Box<dyn Iterator<Item = Tree> + 'a> {
    let Some(k) = k else {
        // Base cases: R_A[i,j] = ℮, or a leaf non-terminal with R = 1.
        let tree = if pre.r_entry(a, i, j) == REntry::Empty {
            Tree::EmptyLeaf
        } else {
            Tree::TerminalLeaf { nt: a, i, j }
        };
        return Box::new(std::iter::once(tree));
    };
    let (b, c) = pre.children[a as usize].expect("k ≠ base implies an inner non-terminal");
    let shift = pre.lengths[b as usize];
    Box::new(pre.i_bar(b, i, k).into_iter().flat_map(move |kb| {
        pre.i_bar(c, k, j).into_iter().flat_map(move |kc| {
            enum_all(pre, b, i, kb, k).flat_map(move |tb| {
                enum_all(pre, c, k, kc, j).map(move |tc| Tree::Inner {
                    shift,
                    left: Box::new(tb.clone()),
                    right: Box::new(tc),
                })
            })
        })
    }))
}

/// Enumerates the yield of a single `(M,A)`-tree (Lemma 8.5): an odometer
/// over the per-terminal-leaf lists `M_{T_x}[i,j]`, with each leaf's marker
/// positions shifted by the total arc-label sum on its root-to-leaf path.
struct YieldIter<'a> {
    /// Per terminal leaf (left-to-right): its total shift and its list.
    leaves: Vec<(u64, &'a [PartialMarkerSet])>,
    /// Odometer state; `None` once exhausted.
    indices: Option<Vec<usize>>,
}

impl<'a> YieldIter<'a> {
    fn new(pre: &'a Preprocessed, tree: Tree) -> Self {
        let mut leaves = Vec::new();
        collect_leaves(pre, &tree, 0, &mut leaves);
        debug_assert!(leaves.iter().all(|(_, list)| !list.is_empty()));
        let indices = Some(vec![0; leaves.len()]);
        YieldIter { leaves, indices }
    }
}

fn collect_leaves<'a>(
    pre: &'a Preprocessed,
    tree: &Tree,
    shift: u64,
    out: &mut Vec<(u64, &'a [PartialMarkerSet])>,
) {
    match tree {
        Tree::EmptyLeaf => {}
        Tree::TerminalLeaf { nt, i, j } => out.push((shift, pre.leaf_set(*nt, *i, *j))),
        Tree::Inner {
            shift: node_shift,
            left,
            right,
        } => {
            collect_leaves(pre, left, shift, out);
            collect_leaves(pre, right, shift + node_shift, out);
        }
    }
}

impl Iterator for YieldIter<'_> {
    type Item = PartialMarkerSet;

    fn next(&mut self) -> Option<PartialMarkerSet> {
        let indices = self.indices.as_mut()?;
        // Combine the current selection: leaves are in document order, so the
        // shifted entries are already position-sorted.
        let mut entries = Vec::new();
        for ((shift, list), &idx) in self.leaves.iter().zip(indices.iter()) {
            let chosen = &list[idx];
            for (pos, set) in chosen.entries() {
                entries.push((pos + shift, set));
            }
        }
        let result = PartialMarkerSet::from_entries(entries);
        // Advance the odometer.
        let mut pos = self.leaves.len();
        loop {
            if pos == 0 {
                self.indices = None;
                break;
            }
            pos -= 1;
            let indices = self.indices.as_mut().expect("checked above");
            indices[pos] += 1;
            if indices[pos] < self.leaves[pos].1.len() {
                break;
            }
            indices[pos] = 0;
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::compress::{Bisection, Chain, Compressor, RePair};
    use slp::families;
    use spanner::examples::figure_2_spanner;
    use spanner::{reference, regex, Span, Variable};
    use std::collections::BTreeSet;

    fn enumerate_set(
        automaton: &SpannerAutomaton<u8>,
        doc: &[u8],
        compressor: &dyn Compressor,
    ) -> Vec<SpanTuple> {
        let slp = compressor.compress(doc);
        Enumerator::new(automaton, &slp).unwrap().iter().collect()
    }

    #[test]
    fn matches_reference_on_the_paper_example() {
        let m = figure_2_spanner();
        let doc = b"aabccaabaa";
        let expected = reference::evaluate(&m, doc);
        for compressor in [&Bisection as &dyn Compressor, &RePair::default(), &Chain] {
            let got = enumerate_set(&m, doc, compressor);
            assert_eq!(
                got.len(),
                expected.len(),
                "compressor {}",
                compressor.name()
            );
            assert_eq!(
                got.into_iter().collect::<BTreeSet<_>>(),
                expected,
                "compressor {}",
                compressor.name()
            );
        }
    }

    #[test]
    fn enumeration_has_no_duplicates_for_dfas() {
        let m = figure_2_spanner();
        for doc in [&b"aabccaabaa"[..], b"abcabc", b"ccaab", b"ababab"] {
            let got = enumerate_set(&m, doc, &Bisection);
            let dedup: BTreeSet<_> = got.iter().cloned().collect();
            assert_eq!(got.len(), dedup.len(), "duplicates on {:?}", doc);
        }
    }

    #[test]
    fn matches_reference_for_regex_spanners() {
        let patterns: Vec<(&str, &[u8])> = vec![
            (".*x{a+}y{b+}.*", b"abc"),
            ("(x{a})?(b|c)*y{c}", b"abc"),
            (".*x{ab}.*", b"ab"),
            ("(a|b)*x{abb}(a|b)*", b"ab"),
        ];
        let docs: Vec<&[u8]> = vec![b"a", b"ab", b"abc", b"aabbc", b"cabab", b"abbabb"];
        for (pattern, alphabet) in patterns {
            let m = regex::compile_deterministic(pattern, alphabet).unwrap();
            for doc in &docs {
                let expected = reference::evaluate(&m, doc);
                let slp = Bisection.compress(doc);
                let got: BTreeSet<SpanTuple> = Enumerator::new(&m, &slp).unwrap().iter().collect();
                assert_eq!(got, expected, "pattern {pattern}, doc {:?}", doc);
            }
        }
    }

    #[test]
    fn nondeterministic_automata_are_rejected_by_default() {
        let m = regex::compile(".*x{a.*}.*", b"ab").unwrap();
        assert!(!m.is_deterministic());
        let slp = Bisection.compress(b"abab");
        assert!(matches!(
            Enumerator::new(&m, &slp),
            Err(EvalError::NondeterministicAutomaton)
        ));
        // The duplicate-tolerant mode still enumerates the correct *set*.
        let e = Enumerator::new_allow_duplicates(&m, &slp).unwrap();
        let got: BTreeSet<SpanTuple> = e.iter().collect();
        assert_eq!(got, reference::evaluate(&m, b"abab"));
    }

    #[test]
    fn enumeration_agrees_with_computation_on_compressed_families() {
        let m = regex::compile_deterministic(".*x{ab}.*", b"ab").unwrap();
        let slp = families::power_word(b"ab", 512);
        let computed: BTreeSet<SpanTuple> = crate::compute::compute_all(&m, &slp)
            .unwrap()
            .into_iter()
            .collect();
        let enumerated: Vec<SpanTuple> = Enumerator::new(&m, &slp).unwrap().iter().collect();
        assert_eq!(enumerated.len(), 512);
        assert_eq!(enumerated.into_iter().collect::<BTreeSet<_>>(), computed);
    }

    #[test]
    fn results_stream_lazily() {
        // Taking a prefix of the enumeration must not require materialising
        // all results: (ab)^(2^16) has 65536 results, we take 10.
        let m = regex::compile_deterministic(".*x{ab}.*", b"ab").unwrap();
        let slp = families::power_word(b"ab", 1 << 16);
        let e = Enumerator::new(&m, &slp).unwrap();
        let first_ten: Vec<SpanTuple> = e.iter().take(10).collect();
        assert_eq!(first_ten.len(), 10);
        let x = Variable(0);
        for t in &first_ten {
            assert_eq!(t.get(x).unwrap().len(), 2);
        }
    }

    #[test]
    fn empty_relation_enumerates_nothing() {
        let m = figure_2_spanner();
        let slp = Bisection.compress(b"cccc");
        let e = Enumerator::new(&m, &slp).unwrap();
        assert_eq!(e.iter().count(), 0);
    }

    #[test]
    fn boolean_spanner_enumerates_the_empty_tuple_once() {
        let m = regex::compile_deterministic("(a|b)*abb", b"ab").unwrap();
        let slp = Bisection.compress(b"aabb");
        let e = Enumerator::new(&m, &slp).unwrap();
        let results: Vec<SpanTuple> = e.iter().collect();
        assert_eq!(results, vec![SpanTuple::empty(0)]);
    }

    #[test]
    fn figure_4_tree_yield_appears_in_the_enumeration() {
        // Example 8.2: the (M,S₀)-tree of Figure 4 has yield
        // {{(⊿y,4),(◁y,6)}}, i.e. the tuple (x ↦ ⊥, y ↦ [4,6⟩).
        let m = figure_2_spanner();
        let slp = slp::examples::example_4_2();
        let results: Vec<SpanTuple> = Enumerator::new(&m, &slp).unwrap().iter().collect();
        let mut expected = SpanTuple::empty(2);
        expected.set(Variable(1), Span::new(4, 6).unwrap());
        assert!(results.contains(&expected));
        // And the full result set matches the reference.
        let reference_set = reference::evaluate(&m, b"aabccaabaa");
        assert_eq!(results.into_iter().collect::<BTreeSet<_>>(), reference_set);
    }
}
