//! Pluggable shard execution: the [`ShardExecutor`] abstraction behind
//! [`Preprocessed::build_sharded`](crate::matrices::Preprocessed::build_sharded).
//!
//! A sharded matrix build (see [`slp::shard`] and `DESIGN.md` §2.2/§4) is a
//! scatter-gather computation: every shard of the document is a
//! *self-contained* sub-grammar whose Lemma 6.5 pass depends on nothing but
//! the shard's own rule block and the prepared query automaton, and the
//! root merge consumes only the shards' `q×q` root summaries.  That makes
//! the per-shard pass a perfect unit of *remote* execution — and this
//! module cuts the build path at exactly that seam:
//!
//! * a [`ShardJob`] is one shard's work order: the standalone rule block
//!   (rebased to local indices, produced by
//!   [`slp::ShardLayout::standalone_block`]) plus the query's
//!   end-transformed automaton — never the surrounding document;
//! * a [`ShardOutcome`] is what the scatter phase hands back: the block's
//!   three-valued summary rows `R_A` (the root summary is `rows[root]`),
//!   optionally the leaf `M_{T_x}` tables (recomputed locally from the
//!   automaton when absent, so they never need to cross a process
//!   boundary), the pass's wall-clock, and whether the executor had to
//!   fall back;
//! * a [`ShardExecutor`] turns jobs into outcomes.  [`LocalExecutor`] is
//!   the default in-process backend (the depth-strata wave schedule,
//!   bit-identical to the monolithic pass); `spanner-server`'s
//!   `RemoteExecutor` ships jobs to worker processes over the wire
//!   protocol and falls back to [`LocalExecutor`] when a worker fails, so
//!   results are never lost.
//!
//! The contract every executor must honour: the returned `rows` must be
//! exactly what [`LocalExecutor`] would produce for the same job (the
//! summaries are deterministic pure functions of the block and the
//! automaton), and `rows.len()` must equal the block's rule count.  The
//! gather phase validates the length and panics on a short answer rather
//! than assembling corrupt matrices.

use crate::matrices::{block_pass, RMatrix};
use crate::prepared::EByte;
use crate::trace::{ShardTrace, SpanRec};
use slp::NormalFormSlp;
use spanner::{MarkedSymbol, PartialMarkerSet};
use spanner_automata::nfa::Nfa;
use std::fmt;
use std::time::{Duration, Instant};

/// One shard's work order: a self-contained rule block plus the prepared
/// query.  Everything a worker needs — and nothing else: the document text
/// and the other shards never cross the executor boundary.
#[derive(Debug, Clone, Copy)]
pub struct ShardJob<'a> {
    /// The query's end-transformed, ε-free automaton (shared by every
    /// shard of one build).  Together with the block this determines the
    /// pass completely — span variables, for instance, are already baked
    /// into the automaton's marker arcs.
    pub nfa: &'a Nfa<MarkedSymbol<EByte>>,
    /// The shard's standalone sub-grammar: rules rebased to `0..len`, the
    /// start symbol deriving exactly the shard's text.
    pub block: &'a NormalFormSlp<EByte>,
    /// Position of this shard in the document's shard order (for logs and
    /// per-shard bookkeeping).
    pub shard_index: usize,
    /// Trace handle of the sampled request this job belongs to, `None` on
    /// the unsampled hot path.  The embedded epoch is the *request's*, so
    /// an in-process executor records spans directly in the request
    /// timebase; remote executors propagate `ctx` on the wire instead and
    /// re-base the worker's fragment at the gather.
    pub trace: Option<ShardTrace>,
}

/// What one shard pass produced.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The block's three-valued summaries, one bit-packed `q×q`
    /// [`RMatrix`] per block rule in local index order.
    /// `rows[block.start()]` is the shard's root summary — the only row
    /// the gather phase's spine merge reads.
    pub rows: Vec<RMatrix>,
    /// The block's full leaf tables `M_{T_x}` (local index order), if the
    /// executor computed them in-process.  `None` means "recompute from
    /// the automaton at the gather" — leaf tables depend only on the query
    /// automaton and the leaf's terminal, so remote executors never ship
    /// them.
    pub leaf_tables: Option<Vec<Option<Vec<Vec<PartialMarkerSet>>>>>,
    /// Wall-clock of the pass as observed by the executor (for remote
    /// backends: the full round-trip, which is what the critical path of a
    /// distributed build actually pays).
    pub elapsed: Duration,
    /// `true` if a non-local executor failed and this outcome came from
    /// the local fallback.
    pub fallback: bool,
    /// `true` if the executor re-issued the pass to a second backend after
    /// a latency budget expired (a *hedged* pass) — regardless of which
    /// copy won.  Purely observational: hedged outcomes carry the same
    /// entry-identical rows as unhedged ones.
    pub hedged: bool,
    /// Span fragment recorded by the executor when the job carried a
    /// [`ShardTrace`] — already in the request timebase (empty, and
    /// allocation-free, on the unsampled path).
    pub spans: Vec<SpanRec>,
}

/// A backend that runs one shard's matrix pass.  Implementations must be
/// shareable across threads: a sharded build scatters its jobs
/// concurrently, and a [`Service`](crate::service::Service) holds one
/// executor for every document it serves.
///
/// See the module docs for the output contract.
pub trait ShardExecutor: fmt::Debug + Send + Sync {
    /// Runs the Lemma 6.5 pass over one shard block.
    fn execute(&self, job: &ShardJob<'_>) -> ShardOutcome;

    /// A short human-readable backend name (for logs and experiments).
    fn name(&self) -> &'static str {
        "unnamed"
    }
}

/// The in-process backend: leaf tables plus the depth-strata `R_A` wave
/// schedule over the block, exactly the pass a monolithic
/// [`Preprocessed::build`](crate::matrices::Preprocessed::build) runs —
/// entry-identical output, and still the default for every service.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalExecutor;

impl ShardExecutor for LocalExecutor {
    fn execute(&self, job: &ShardJob<'_>) -> ShardOutcome {
        let start = Instant::now();
        let (rows, leaf_tables) = block_pass(job.nfa, job.block);
        let elapsed = start.elapsed();
        let spans = match &job.trace {
            Some(trace) if trace.ctx.sampled => vec![SpanRec {
                name: "shard_pass".to_string(),
                start_us: trace.offset_us(start),
                dur_us: elapsed.as_micros() as u64,
                parent: None,
                attrs: vec![
                    ("shard".to_string(), job.shard_index.to_string()),
                    (
                        "rules".to_string(),
                        job.block.num_non_terminals().to_string(),
                    ),
                ],
            }],
            _ => Vec::new(),
        };
        ShardOutcome {
            rows,
            leaf_tables: Some(leaf_tables),
            elapsed,
            fallback: false,
            hedged: false,
            spans,
        }
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PreparedQuery;
    use crate::matrices::Preprocessed;
    use slp::{families, shard};
    use spanner::regex;
    use std::sync::Arc;

    #[test]
    fn local_executor_matches_the_serial_pass_per_block() {
        let m = regex::compile(".*x{a+}y{b+}.*", b"ab").unwrap();
        let query = PreparedQuery::determinized(&m);
        let doc = families::power_word(b"ab", 200);
        let (combined, layout) = shard::split(&doc, 4).compose();
        let ended = combined
            .map_terminals(EByte::Byte)
            .append_terminal(EByte::End);
        for (i, block) in layout.standalone_blocks(ended.rules()).iter().enumerate() {
            let job = ShardJob {
                nfa: query.nfa(),
                block,
                shard_index: i,
                trace: None,
            };
            let outcome = LocalExecutor.execute(&job);
            assert_eq!(outcome.rows.len(), block.num_non_terminals());
            assert!(!outcome.fallback);
            // The block is a grammar of its own; a full serial build over it
            // must agree row-for-row with the executor's pass.
            let serial = Preprocessed::build_serial(query.nfa(), block, query.num_vars());
            assert_eq!(outcome.rows, serial.r, "shard {i}");
            assert_eq!(
                outcome.leaf_tables.as_deref().unwrap(),
                &serial.leaf_tables[..],
                "shard {i}"
            );
        }
    }

    #[test]
    fn executors_are_object_safe_and_shareable() {
        let executor: Arc<dyn ShardExecutor> = Arc::new(LocalExecutor);
        assert_eq!(executor.name(), "local");
        let clone = executor.clone();
        std::thread::spawn(move || clone.name()).join().unwrap();
    }
}
