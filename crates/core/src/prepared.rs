//! Shared preparation: the "end-of-document" transformation of Section 6.1
//! and the preprocessing of Lemma 6.5.
//!
//! The evaluation algorithms for computing and enumerating `⟦M⟧(D)` require
//! every accepted subword-marked word to be *non-tail-spanning* (no markers
//! after the last terminal).  The paper achieves this with the language
//! transformation `L(M') = { w·# : w ∈ L(M) }` for a fresh terminal `#`,
//! evaluated over `D·#`; results are unchanged (`⟦M⟧(D) = ⟦M'⟧(D#)`).
//! [`EByte`] is the extended terminal alphabet; [`PreparedEvaluation`]
//! bundles a [`PreparedQuery`], a [`PreparedDocument`] and the preprocessed
//! matrices of the pair — see the [`engine`](crate::engine) module for the
//! two-stage split and the pooling/caching layer on top of it.

use crate::engine::{PreparedDocument, PreparedQuery};
use crate::matrices::Preprocessed;
use slp::NormalFormSlp;
use spanner::{MarkedSymbol, SpannerAutomaton};
use spanner_automata::nfa::{Label, Nfa};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The document alphabet extended by the end-of-document sentinel `#`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EByte {
    /// An ordinary document byte.
    Byte(u8),
    /// The end-of-document sentinel (the paper's `#`).
    End,
}

/// The result of the shared preprocessing for one (query, document) pair:
/// the two prepared stages plus the matrices of Lemma 6.5.  Total
/// construction time is `O(|M| + size(S) · q³)`.
///
/// The three parts are reusable independently: the query stage across other
/// documents, the document stage across other queries, and the matrices
/// whenever the same pair is evaluated again (see [`crate::engine::Engine`]).
#[derive(Debug)]
pub struct PreparedEvaluation {
    /// The query-side stage: end-transformed, ε-free automaton over
    /// `Σ∪{#} ∪ P(Γ_X)`.
    pub query: PreparedQuery,
    /// The document-side stage: the SLP for `D·#` (plus matrix cache).
    pub document: PreparedDocument,
    /// The matrices `R_A`, `M_{T_x}` and auxiliary grammar data for the
    /// pair.
    pub pre: Arc<Preprocessed>,
}

impl PreparedEvaluation {
    /// Builds the prepared evaluation context for an automaton and a
    /// compressed document.
    ///
    /// ε-transitions are removed first if present (they are a representation
    /// convenience and never needed by the algorithms); the automaton is
    /// *not* determinised — use [`PreparedQuery::determinized`] with
    /// [`PreparedEvaluation::from_stages`] for the tasks that need it.
    pub fn new(
        automaton: &SpannerAutomaton<u8>,
        document: &NormalFormSlp<u8>,
    ) -> Result<Self, crate::EvalError> {
        Ok(Self::from_stages(
            PreparedQuery::new(automaton),
            PreparedDocument::new(document),
        ))
    }

    /// Combines an already prepared query and document, building (or
    /// fetching from the document's cache) the pair's matrices.
    pub fn from_stages(query: PreparedQuery, document: PreparedDocument) -> Self {
        let pre = document.matrices(&query);
        PreparedEvaluation {
            query,
            document,
            pre,
        }
    }

    /// The end-transformed, ε-free automaton over `Σ∪{#} ∪ P(Γ_X)`.
    pub fn nfa(&self) -> &Nfa<MarkedSymbol<EByte>> {
        self.query.nfa()
    }

    /// The SLP for `D·#`.
    pub fn slp(&self) -> &NormalFormSlp<EByte> {
        self.document.ended()
    }

    /// Number of span variables `|X|`.
    pub fn num_vars(&self) -> usize {
        self.query.num_vars()
    }

    /// `true` if the (transformed) automaton is deterministic, the
    /// precondition of duplicate-free enumeration (Lemma 8.8).
    pub fn deterministic(&self) -> bool {
        self.query.is_deterministic()
    }
}

/// Number of times [`end_transform`] has run in this process (across all
/// threads).  Test instrumentation for the reuse guarantee: preparing one
/// query against `k` documents must perform the automaton-side
/// transformation exactly once.
static END_TRANSFORM_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of [`end_transform`] runs (test instrumentation).
pub fn end_transform_count() -> usize {
    END_TRANSFORM_COUNT.load(Ordering::SeqCst)
}

/// The paper's non-tail-spanning transformation: `L(M') = L(M)·#`.
///
/// A fresh state `f` is added; every accepting state gets a `#`-transition
/// to `f`, and `f` becomes the unique accepting state.  Determinism and
/// ε-freeness are preserved.
pub fn end_transform(nfa: &Nfa<MarkedSymbol<u8>>) -> Nfa<MarkedSymbol<EByte>> {
    END_TRANSFORM_COUNT.fetch_add(1, Ordering::SeqCst);
    let mut out: Nfa<MarkedSymbol<EByte>> = Nfa::with_states(nfa.num_states() + 1);
    let end_state = nfa.num_states();
    out.set_start(nfa.start());
    for (p, label, q) in nfa.arcs() {
        match label {
            Label::Symbol(MarkedSymbol::Terminal(b)) => {
                out.add_transition(p, MarkedSymbol::Terminal(EByte::Byte(b)), q)
            }
            Label::Symbol(MarkedSymbol::Markers(m)) => {
                out.add_transition(p, MarkedSymbol::Markers(m), q)
            }
            Label::Epsilon => out.add_epsilon(p, q),
        }
    }
    for q in nfa.accepting_states() {
        out.add_transition(q, MarkedSymbol::Terminal(EByte::End), end_state);
    }
    out.set_accepting(end_state, true);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner::examples::figure_2_spanner;

    #[test]
    fn end_transform_adds_one_state_and_stays_deterministic() {
        let m = figure_2_spanner();
        let before = end_transform_count();
        let ended = end_transform(m.nfa());
        assert!(end_transform_count() > before);
        assert_eq!(ended.num_states(), m.num_states() + 1);
        assert_eq!(ended.num_transitions(), m.num_transitions() + 1);
        assert!(ended.is_deterministic());
        assert_eq!(ended.accepting_states(), vec![m.num_states()]);
    }

    #[test]
    fn prepared_evaluation_builds_for_the_paper_example() {
        let m = figure_2_spanner();
        let slp = slp::examples::example_4_2();
        let prep = PreparedEvaluation::new(&m, &slp).unwrap();
        assert!(prep.deterministic());
        assert_eq!(prep.num_vars(), 2);
        // D# has length 11.
        assert_eq!(prep.slp().document_len(), 11);
        // Terminals of the transformed SLP include the sentinel.
        assert!(prep.slp().terminals().contains(&EByte::End));
    }

    #[test]
    fn from_stages_reuses_the_document_cache() {
        let m = figure_2_spanner();
        let slp = slp::examples::example_4_2();
        let query = PreparedQuery::new(&m);
        let document = PreparedDocument::new(&slp);
        let first = document.matrices(&query);
        let prep = PreparedEvaluation::from_stages(query, document);
        assert!(Arc::ptr_eq(&first, &prep.pre));
    }
}
