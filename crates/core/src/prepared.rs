//! Shared preparation: the "end-of-document" transformation of Section 6.1
//! and the preprocessing of Lemma 6.5.
//!
//! The evaluation algorithms for computing and enumerating `⟦M⟧(D)` require
//! every accepted subword-marked word to be *non-tail-spanning* (no markers
//! after the last terminal).  The paper achieves this with the language
//! transformation `L(M') = { w·# : w ∈ L(M) }` for a fresh terminal `#`,
//! evaluated over `D·#`; results are unchanged (`⟦M⟧(D) = ⟦M'⟧(D#)`).
//! [`EByte`] is the extended terminal alphabet, [`PreparedEvaluation`]
//! bundles the transformed automaton, the transformed SLP and the
//! preprocessed matrices.

use crate::matrices::Preprocessed;
use slp::NormalFormSlp;
use spanner::{MarkedSymbol, SpannerAutomaton};
use spanner_automata::nfa::{Label, Nfa};

/// The document alphabet extended by the end-of-document sentinel `#`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EByte {
    /// An ordinary document byte.
    Byte(u8),
    /// The end-of-document sentinel (the paper's `#`).
    End,
}

/// The result of the shared preprocessing: the end-transformed automaton and
/// document plus the matrices of Lemma 6.5.  Construction time is
/// `O(|M| + size(S) · q³)`.
#[derive(Debug)]
pub struct PreparedEvaluation {
    /// The end-transformed, ε-free automaton over `Σ∪{#} ∪ P(Γ_X)`.
    pub nfa: Nfa<MarkedSymbol<EByte>>,
    /// The SLP for `D·#`.
    pub slp: NormalFormSlp<EByte>,
    /// Number of span variables `|X|`.
    pub num_vars: usize,
    /// `true` if the (transformed) automaton is deterministic, the
    /// precondition of duplicate-free enumeration (Lemma 8.8).
    pub deterministic: bool,
    /// The matrices `R_A`, `M_{T_x}` and auxiliary grammar data.
    pub pre: Preprocessed,
}

impl PreparedEvaluation {
    /// Builds the prepared evaluation context for an automaton and a
    /// compressed document.
    ///
    /// ε-transitions are removed first if present (they are a representation
    /// convenience and never needed by the algorithms).
    pub fn new(
        automaton: &SpannerAutomaton<u8>,
        document: &NormalFormSlp<u8>,
    ) -> Result<Self, crate::EvalError> {
        let automaton = if automaton.nfa().has_epsilon() {
            automaton.without_epsilon()
        } else {
            automaton.clone()
        };
        let deterministic = automaton.is_deterministic();
        let nfa = end_transform(automaton.nfa());
        let slp = document.map_terminals(EByte::Byte).append_terminal(EByte::End);
        let pre = Preprocessed::build(&nfa, &slp, automaton.num_vars());
        Ok(PreparedEvaluation {
            nfa,
            slp,
            num_vars: automaton.num_vars(),
            deterministic,
            pre,
        })
    }
}

/// The paper's non-tail-spanning transformation: `L(M') = L(M)·#`.
///
/// A fresh state `f` is added; every accepting state gets a `#`-transition
/// to `f`, and `f` becomes the unique accepting state.  Determinism and
/// ε-freeness are preserved.
pub fn end_transform(nfa: &Nfa<MarkedSymbol<u8>>) -> Nfa<MarkedSymbol<EByte>> {
    let mut out: Nfa<MarkedSymbol<EByte>> = Nfa::with_states(nfa.num_states() + 1);
    let end_state = nfa.num_states();
    out.set_start(nfa.start());
    for (p, label, q) in nfa.arcs() {
        match label {
            Label::Symbol(MarkedSymbol::Terminal(b)) => {
                out.add_transition(p, MarkedSymbol::Terminal(EByte::Byte(b)), q)
            }
            Label::Symbol(MarkedSymbol::Markers(m)) => {
                out.add_transition(p, MarkedSymbol::Markers(m), q)
            }
            Label::Epsilon => out.add_epsilon(p, q),
        }
    }
    for q in nfa.accepting_states() {
        out.add_transition(q, MarkedSymbol::Terminal(EByte::End), end_state);
    }
    out.set_accepting(end_state, true);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner::examples::figure_2_spanner;

    #[test]
    fn end_transform_adds_one_state_and_stays_deterministic() {
        let m = figure_2_spanner();
        let ended = end_transform(m.nfa());
        assert_eq!(ended.num_states(), m.num_states() + 1);
        assert_eq!(ended.num_transitions(), m.num_transitions() + 1);
        assert!(ended.is_deterministic());
        assert_eq!(ended.accepting_states(), vec![m.num_states()]);
    }

    #[test]
    fn prepared_evaluation_builds_for_the_paper_example() {
        let m = figure_2_spanner();
        let slp = slp::examples::example_4_2();
        let prep = PreparedEvaluation::new(&m, &slp).unwrap();
        assert!(prep.deterministic);
        assert_eq!(prep.num_vars, 2);
        // D# has length 11.
        assert_eq!(prep.slp.document_len(), 11);
        // Terminals of the transformed SLP include the sentinel.
        assert!(prep.slp.terminals().contains(&EByte::End));
    }
}
