//! Zero-dependency request tracing and latency histograms.
//!
//! Every layer of the serving stack (admission → matrix cache → sharded
//! scatter-gather → task execution) can attribute its share of a request's
//! wall-clock here:
//!
//! * A [`TraceContext`] names one request (`trace_id`) and says whether it
//!   is **sampled**.  Unsampled requests pay *nothing* on this module —
//!   the only per-request observability cost on the hot path is a
//!   histogram bucket increment ([`Hist::observe`], one atomic add, no
//!   allocation).
//! * A [`Tracer`] collects [`SpanRec`]s for one sampled request: flat
//!   records (name, start offset µs from the request epoch, duration µs,
//!   parent index, small `key=value` attributes) forming a forest — the
//!   natural shape of a request that does several top-level things
//!   (admission, cache lookup, task execution).
//! * Span *fragments* recorded elsewhere (a shard executor, a remote
//!   worker answering over the wire in its own timebase) are stitched into
//!   a trace with [`graft`]: parent indices are remapped, fragment roots
//!   are re-parented, and start offsets are re-based.
//! * [`Hist`] is a log2-bucketed latency histogram (32 power-of-two
//!   buckets over microseconds) with lock-free `observe` and mergeable
//!   [`HistSnapshot`]s that estimate percentiles — the metrics surface for
//!   the *unsampled* majority of traffic.
//!
//! The module is `std`-only by design: traces cross the wire protocol and
//! must not pull serialization dependencies into the core crate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identity and sampling decision of one request's trace, propagated
/// end-to-end (client → coordinator → workers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Caller-chosen request identity (`0` is reserved for "no trace" on
    /// the wire, so samplers never assign it).
    pub trace_id: u64,
    /// Whether spans are recorded for this request.  Carrying an unsampled
    /// context is legal and free: recorders check this flag first.
    pub sampled: bool,
}

/// One recorded span: a named interval of a request, with its parent (an
/// index into the owning trace's span vector; `None` for a root of the
/// forest) and small `key=value` attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// What the interval was spent on (`"cache_lookup"`, `"shard_rpc"`…).
    pub name: String,
    /// Start offset in microseconds from the trace's epoch (for worker
    /// fragments: from the *worker's* receipt of the job, until grafted).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Index of the parent span in the same vector; `None` for roots.
    pub parent: Option<u32>,
    /// Small key=value attributes (`worker=127.0.0.1:7879`, `hit=true`…).
    pub attrs: Vec<(String, String)>,
}

impl SpanRec {
    /// End offset in microseconds.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }
}

/// What a sampled request hands down into the shard build path: the
/// context plus the request's epoch, so per-shard executors record spans
/// directly in the request's timebase.
#[derive(Debug, Clone, Copy)]
pub struct ShardTrace {
    /// The request's trace context.
    pub ctx: TraceContext,
    /// The request's epoch: span start offsets are measured from here.
    pub epoch: Instant,
}

impl ShardTrace {
    /// Microseconds elapsed from the epoch to `at` (saturating — an
    /// executor clock can never observe a negative offset).
    pub fn offset_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }
}

/// Collects the spans of one sampled request.  Recording is `&self` (the
/// span vector sits behind a mutex) so parallel build phases can append
/// concurrently; the hot path never constructs one of these.
#[derive(Debug)]
pub struct Tracer {
    ctx: TraceContext,
    epoch: Instant,
    spans: Mutex<Vec<SpanRec>>,
}

impl Tracer {
    /// A tracer whose epoch is "now".
    pub fn new(ctx: TraceContext) -> Tracer {
        Tracer::with_epoch(ctx, Instant::now())
    }

    /// A tracer measuring offsets from an explicit epoch (e.g. the instant
    /// a server read the request frame, so admission wait is visible).
    pub fn with_epoch(ctx: TraceContext, epoch: Instant) -> Tracer {
        Tracer {
            ctx,
            epoch,
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The trace's context.
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }

    /// Microseconds elapsed since the trace epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The handle shard builds carry down to executors.
    pub fn shard_trace(&self) -> ShardTrace {
        ShardTrace {
            ctx: self.ctx,
            epoch: self.epoch,
        }
    }

    /// Records one span and returns its index (usable as a parent).
    pub fn record(
        &self,
        name: &str,
        start_us: u64,
        dur_us: u64,
        parent: Option<u32>,
        attrs: &[(&str, String)],
    ) -> u32 {
        let mut spans = self.spans.lock().expect("trace span lock poisoned");
        spans.push(SpanRec {
            name: name.to_string(),
            start_us,
            dur_us,
            parent,
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
        (spans.len() - 1) as u32
    }

    /// Stitches a recorded fragment under `parent` (see [`graft`]).
    pub fn graft(&self, fragment: &[SpanRec], parent: Option<u32>, base_us: u64) {
        let mut spans = self.spans.lock().expect("trace span lock poisoned");
        graft(&mut spans, fragment, parent, base_us);
    }

    /// Consumes the tracer, yielding the span forest.
    pub fn finish(self) -> Vec<SpanRec> {
        self.spans.into_inner().expect("trace span lock poisoned")
    }
}

/// Appends `fragment` to `into`, remapping the fragment's internal parent
/// indices, re-parenting its roots to `parent`, and shifting every start
/// offset by `base_us` (0 when the fragment already shares the target's
/// timebase; a worker fragment is re-based by the coordinator's issue
/// offset, which charges the network to the enclosing RPC span).
pub fn graft(into: &mut Vec<SpanRec>, fragment: &[SpanRec], parent: Option<u32>, base_us: u64) {
    let offset = into.len() as u32;
    for span in fragment {
        into.push(SpanRec {
            name: span.name.clone(),
            start_us: span.start_us + base_us,
            dur_us: span.dur_us,
            parent: span.parent.map(|p| p + offset).or(parent),
            attrs: span.attrs.clone(),
        });
    }
}

// ---------------------------------------------------------------------------
// Server-side probabilistic sampling
// ---------------------------------------------------------------------------

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
/// Used wherever the stack needs deterministic pseudo-randomness without a
/// seeded RNG dependency (trace sampling, retry jitter).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A server-side probabilistic trace sampler: arms tracing for a fraction
/// of requests that did not opt in themselves, so histograms and span
/// trees fill without cooperative clients.
///
/// The decision is deterministic — SplitMix64 over an atomic request
/// counter compared against `rate · 2⁶⁴` — which makes tests exact and
/// keeps the hot path to one relaxed `fetch_add` plus a few arithmetic
/// ops.  Sampled requests get a fresh non-zero trace id (0 is the wire's
/// "no trace" sentinel).  Slow-log capture is a separate, *always-on*
/// policy: the server traces every request whenever `--slow-log-ms` is
/// set, regardless of this sampler.
#[derive(Debug)]
pub struct Sampler {
    /// Sample request `n` iff `splitmix64(n) < threshold`.
    threshold: u64,
    counter: AtomicU64,
}

impl Sampler {
    /// A sampler keeping roughly `rate` of requests (clamped to `0.0..=1.0`;
    /// `0.0` never samples, `1.0` always does).
    pub fn new(rate: f64) -> Sampler {
        let rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        // `as` saturates: rate 1.0 maps to u64::MAX, i.e. "always".
        let threshold = (rate * (u64::MAX as f64)) as u64;
        Sampler {
            threshold,
            counter: AtomicU64::new(0),
        }
    }

    /// Whether this sampler can ever fire (rate > 0) — callers use this to
    /// skip per-request work when sampling is off.
    pub fn enabled(&self) -> bool {
        self.threshold != 0
    }

    /// The sampling decision for the next request: `Some(trace_id)` to arm
    /// tracing (the id is non-zero and deterministic in the request
    /// ordinal), `None` to stay on the free path.
    pub fn sample(&self) -> Option<u64> {
        if self.threshold == 0 {
            return None;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        if splitmix64(n) >= self.threshold {
            return None;
        }
        // A second, independent mix spreads ids even when every request is
        // sampled; 0 is reserved on the wire, so remap it.
        Some(splitmix64(!n).max(1))
    }
}

// ---------------------------------------------------------------------------
// Log2-bucketed latency histograms
// ---------------------------------------------------------------------------

/// Number of power-of-two buckets: bucket `i` counts observations
/// `≤ 2^i µs`, and the last bucket absorbs everything above (≈ 36 minutes —
/// effectively `+Inf` for a request latency).
pub const HIST_BUCKETS: usize = 32;

/// The bucket an observation of `us` microseconds lands in: the smallest
/// `i` with `us ≤ 2^i`, clamped to the last bucket.
pub fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        ((64 - (us - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Upper edge of bucket `i` in microseconds (`2^i`); the label a
/// Prometheus `le` rendering uses.
pub fn bucket_le(i: usize) -> u64 {
    1u64 << i
}

/// A lock-free log2 latency histogram: observation is one relaxed atomic
/// add per counter — no locks, no allocation — so it is safe to sit on the
/// unsampled hot path.
#[derive(Debug, Default)]
pub struct Hist {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Hist {
    /// A fresh, empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Records one observation of `us` microseconds.
    pub fn observe(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
    }

    /// A point-in-time copy (relaxed reads: totals may trail concurrent
    /// observers by a few counts, never tear a single counter).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned histogram state: what crosses the wire in `stats` frames and
/// what percentile estimation runs on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Per-bucket (non-cumulative) observation counts; shorter vectors are
    /// implicitly zero-padded to [`HIST_BUCKETS`] (wire frames trim
    /// trailing zeros).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values in microseconds.
    pub sum: u64,
}

impl HistSnapshot {
    /// Count in bucket `i` (0 beyond the stored prefix).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Folds another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Drops trailing zero buckets — the canonical wire form (codecs omit
    /// them, so a snapshot must be trimmed before it crosses the wire for
    /// `decode(encode(x)) == x` to hold).
    pub fn trimmed(mut self) -> HistSnapshot {
        while self.buckets.last() == Some(&0) {
            self.buckets.pop();
        }
        self
    }

    /// Cumulative counts (`cum[i]` = observations `≤ 2^i µs`), always
    /// [`HIST_BUCKETS`] entries, with `cum[last] == count`.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut cum = Vec::with_capacity(HIST_BUCKETS);
        let mut acc = 0u64;
        for i in 0..HIST_BUCKETS {
            acc += self.bucket(i);
            cum.push(acc);
        }
        cum
    }

    /// Upper-bound percentile estimate: the upper edge (µs) of the first
    /// bucket whose cumulative count reaches `p·count`.  Every recorded
    /// observation at that rank was `≤` the returned value (the bucket
    /// width — at most 2× — is the estimation error).  Returns 0 on an
    /// empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for i in 0..HIST_BUCKETS {
            acc += self.bucket(i);
            if acc >= rank {
                return bucket_le(i);
            }
        }
        bucket_le(HIST_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        for us in [0u64, 1, 2, 3, 4, 5, 8, 9, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(us);
            assert!(i >= last, "bucket index must be monotone in the value");
            assert!(i < HIST_BUCKETS);
            // The value really is ≤ the bucket's upper edge (except in the
            // clamped last bucket).
            if i < HIST_BUCKETS - 1 {
                assert!(us <= bucket_le(i), "us={us} exceeds le={}", bucket_le(i));
                if i > 0 {
                    assert!(us > bucket_le(i - 1), "us={us} fits the bucket below");
                }
            }
            last = i;
        }
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let h = Hist::new();
        for us in [0u64, 1, 1, 3, 100, 5_000, 5_000, 70_000, 1 << 25] {
            h.observe(us);
        }
        let snap = h.snapshot();
        let cum = snap.cumulative();
        assert_eq!(cum.len(), HIST_BUCKETS);
        for w in cum.windows(2) {
            assert!(w[0] <= w[1], "cumulative counts must be non-decreasing");
        }
        assert_eq!(*cum.last().unwrap(), snap.count);
        assert_eq!(snap.count, 9);
        assert_eq!(
            snap.sum,
            1 + 1 + 3 + 100 + 5_000 + 5_000 + 70_000 + (1 << 25)
        );
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Hist::new();
        let b = Hist::new();
        let (xs, ys) = ([1u64, 50, 3_000], [2u64, 50, 1 << 22, 7]);
        for &x in &xs {
            a.observe(x);
        }
        for &y in &ys {
            b.observe(y);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());

        let all = Hist::new();
        for v in xs.iter().chain(ys.iter()) {
            all.observe(*v);
        }
        let expect = all.snapshot();
        assert_eq!(merged.count, expect.count);
        assert_eq!(merged.sum, expect.sum);
        for i in 0..HIST_BUCKETS {
            assert_eq!(merged.bucket(i), expect.bucket(i), "bucket {i}");
        }
    }

    /// Percentile property: for a deterministic pseudo-random sample, the
    /// histogram's estimate is an upper bound on the true percentile and
    /// within one bucket (≤ 2×, and never below the bucket's lower edge).
    #[test]
    fn percentile_estimates_bound_the_true_rank_statistic() {
        let mut seed = 0x1234_5678_9ABC_DEF0u64;
        let mut sample = Vec::new();
        let h = Hist::new();
        for _ in 0..10_000 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let v = seed % 1_000_000;
            sample.push(v);
            h.observe(v);
        }
        sample.sort_unstable();
        let snap = h.snapshot();
        for p in [0.5, 0.95, 0.99] {
            let rank = (((sample.len() as f64) * p).ceil() as usize).clamp(1, sample.len());
            let truth = sample[rank - 1];
            let est = snap.percentile(p);
            assert!(
                est >= truth,
                "p{p}: estimate {est} below true value {truth}"
            );
            // The estimate is the upper edge of the bucket holding the true
            // value, so it overshoots by less than the bucket width.
            assert!(
                est <= bucket_le(bucket_index(truth)),
                "p{p}: estimate {est} beyond the true value's bucket"
            );
        }
        assert_eq!(
            snap.percentile(1.0),
            bucket_le(bucket_index(*sample.last().unwrap())).max(snap.percentile(1.0))
        );
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        assert_eq!(HistSnapshot::default().percentile(0.99), 0);
    }

    #[test]
    fn trimming_drops_only_trailing_zeros_and_changes_no_statistic() {
        let h = Hist::new();
        for us in [1u64, 5, 5, 900] {
            h.observe(us);
        }
        let full = h.snapshot();
        let trimmed = full.clone().trimmed();
        assert!(trimmed.buckets.len() < HIST_BUCKETS);
        assert_ne!(trimmed.buckets.last(), Some(&0));
        assert_eq!(trimmed.count, full.count);
        assert_eq!(trimmed.sum, full.sum);
        for i in 0..HIST_BUCKETS {
            assert_eq!(trimmed.bucket(i), full.bucket(i), "bucket {i}");
        }
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(trimmed.percentile(p), full.percentile(p));
        }
        // Idempotent, and the empty histogram trims to no buckets at all.
        assert_eq!(trimmed.clone().trimmed(), trimmed);
        assert!(Hist::new().snapshot().trimmed().buckets.is_empty());
    }

    #[test]
    fn sampler_rates_are_exact_at_the_extremes() {
        let never = Sampler::new(0.0);
        assert!(!never.enabled());
        assert!((0..1000).all(|_| never.sample().is_none()));

        let always = Sampler::new(1.0);
        assert!(always.enabled());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = always.sample().expect("rate 1.0 samples everything");
            assert_ne!(id, 0, "0 is the wire's no-trace sentinel");
            assert!(seen.insert(id), "ids must not repeat");
        }
        // Out-of-range and non-finite rates degrade safely.
        assert!(Sampler::new(7.5).sample().is_some());
        assert!(Sampler::new(-1.0).sample().is_none());
        assert!(Sampler::new(f64::NAN).sample().is_none());
    }

    #[test]
    fn sampler_keeps_roughly_the_requested_fraction() {
        for rate in [0.1, 0.5, 0.9] {
            let sampler = Sampler::new(rate);
            let kept = (0..20_000).filter(|_| sampler.sample().is_some()).count();
            let got = kept as f64 / 20_000.0;
            assert!(
                (got - rate).abs() < 0.02,
                "rate {rate}: kept fraction {got}"
            );
        }
        // Deterministic: two samplers at the same rate make identical
        // decisions in the same order.
        let (a, b) = (Sampler::new(0.3), Sampler::new(0.3));
        for _ in 0..1000 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn tracer_records_and_parents_spans() {
        let tracer = Tracer::new(TraceContext {
            trace_id: 7,
            sampled: true,
        });
        let root = tracer.record("cache_lookup", 0, 120, None, &[("hit", "false".into())]);
        tracer.record("matrix_build", 10, 100, Some(root), &[]);
        let spans = tracer.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "cache_lookup");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(
            spans[0].attrs,
            vec![("hit".to_string(), "false".to_string())]
        );
    }

    /// Grafting a worker fragment: internal parents are remapped by the
    /// insertion offset, fragment roots adopt the target parent, and every
    /// start offset shifts by the re-base.
    #[test]
    fn graft_remaps_parents_and_rebases_offsets() {
        let mut trace = vec![SpanRec {
            name: "shard_rpc".into(),
            start_us: 500,
            dur_us: 900,
            parent: None,
            attrs: Vec::new(),
        }];
        let fragment = vec![
            SpanRec {
                name: "worker_build".into(),
                start_us: 0,
                dur_us: 800,
                parent: None,
                attrs: Vec::new(),
            },
            SpanRec {
                name: "shard_pass".into(),
                start_us: 100,
                dur_us: 650,
                parent: Some(0),
                attrs: Vec::new(),
            },
        ];
        graft(&mut trace, &fragment, Some(0), 500);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[1].name, "worker_build");
        assert_eq!(
            trace[1].parent,
            Some(0),
            "fragment root re-parents to the RPC span"
        );
        assert_eq!(
            trace[1].start_us, 500,
            "fragment re-bases to the issue offset"
        );
        assert_eq!(trace[2].parent, Some(1), "fragment-internal parent remaps");
        assert_eq!(trace[2].start_us, 600);
    }
}
