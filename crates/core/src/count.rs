//! Counting `|⟦M⟧(D)|` **without enumerating**, in time `O(size(S)·q³)`.
//!
//! This is a natural extension of the paper's toolbox (it is not spelled
//! out in the paper, but follows directly from its Section 6 machinery):
//! by Lemma 6.9 the composition `M_B[i,k] ⊗ M_C[k,j]` is duplicate-free, so
//! `|K^k_A[i,j]| = |M_B[i,k]| · |M_C[k,j]|`, and for a *deterministic*
//! automaton the sets `K^k_A[i,j]` for different `k` and the sets
//! `M_{S₀}[q₀, j]` for different accepting `j` are pairwise disjoint
//! (Lemma 8.7).  Hence the cardinalities satisfy the recurrence
//!
//! ```text
//! cnt_A[i,j] = Σ_{k ∈ I_A[i,j]}  cnt_B[i,k] · cnt_C[k,j]
//! |⟦M⟧(D)|   = Σ_{j ∈ F'}        cnt_{S₀}[q₀, j]
//! ```
//!
//! which is a single bottom-up pass over the SLP — the result count of a
//! document with 2⁴⁰ symbols is obtained in microseconds.  Counts are
//! returned as `u128` (they can be astronomically large: up to
//! `(d²/2 + 2)^|X|`).

use crate::error::EvalError;
use crate::matrices::{Preprocessed, REntry};
use crate::prepared::PreparedEvaluation;
use slp::NormalFormSlp;
use spanner::SpannerAutomaton;

/// Counts `|⟦M⟧(D)|` in `O(|M| + size(S)·q³)` without enumerating.
///
/// Requires a deterministic automaton (otherwise different accepting runs of
/// the same result would be counted multiple times); non-deterministic
/// automata are rejected with [`EvalError::NondeterministicAutomaton`] —
/// determinise first, exactly as for enumeration.
pub fn count_results(
    automaton: &SpannerAutomaton<u8>,
    document: &NormalFormSlp<u8>,
) -> Result<u128, EvalError> {
    let prepared = PreparedEvaluation::new(automaton, document)?;
    if !prepared.deterministic() {
        return Err(EvalError::NondeterministicAutomaton);
    }
    Ok(count_from_prepared(&prepared))
}

/// Counts `|⟦M⟧(D)|` from an existing (deterministic) prepared evaluation.
pub fn count_from_prepared(prepared: &PreparedEvaluation) -> u128 {
    count_from_matrices(&prepared.pre)
}

/// Counts `|⟦M⟧(D)|` directly from the preprocessed matrices of a
/// (query, document) pair — the engine-facing entry point.  The matrices
/// must have been built from a deterministic automaton for the count to be
/// duplicate-free.
pub fn count_from_matrices(pre: &Preprocessed) -> u128 {
    let q = pre.q;
    let n = pre.children.len();
    // cnt[a][i*q + j] = |M_A[i, j]|, computed bottom-up for every entry
    // (an O(size(S)·q³) pass, mirroring the R_A computation of Lemma 6.5).
    let mut cnt: Vec<Vec<u128>> = vec![Vec::new(); n];
    for &a in &pre.bottom_up {
        let mut table = vec![0u128; q * q];
        match pre.children[a as usize] {
            None => {
                for i in 0..q {
                    for j in 0..q {
                        table[i * q + j] = pre.leaf_set(a, i, j).len() as u128;
                    }
                }
            }
            Some((b, c)) => {
                let cb = &cnt[b as usize];
                let cc = &cnt[c as usize];
                for i in 0..q {
                    for j in 0..q {
                        if pre.r_entry(a, i, j) == REntry::Bot {
                            continue;
                        }
                        let mut total = 0u128;
                        for k in 0..q {
                            let left = cb[i * q + k];
                            if left == 0 {
                                continue;
                            }
                            let right = cc[k * q + j];
                            total += left * right;
                        }
                        table[i * q + j] = total;
                    }
                }
            }
        }
        cnt[a as usize] = table;
    }
    let root = &cnt[pre.start_nt as usize];
    pre.reachable_accepting()
        .into_iter()
        .map(|j| root[pre.nfa_start * q + j])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::compress::{Bisection, Compressor};
    use slp::families;
    use spanner::examples::figure_2_spanner;
    use spanner::{reference, regex};

    #[test]
    fn matches_reference_counts_on_small_documents() {
        let m = figure_2_spanner();
        for doc in [&b"aabccaabaa"[..], b"ca", b"cccc", b"ababab", b"cabc"] {
            let slp = Bisection.compress(doc);
            let expected = reference::evaluate(&m, doc).len() as u128;
            assert_eq!(count_results(&m, &slp).unwrap(), expected, "doc {:?}", doc);
        }
    }

    #[test]
    fn matches_enumeration_on_regex_spanners() {
        let m = regex::compile_deterministic(".*x{a+}y{b+}.*", b"ab").unwrap();
        let doc = b"aabbaabbab";
        let slp = Bisection.compress(doc);
        let enumerated = crate::enumerate::Enumerator::new(&m, &slp)
            .unwrap()
            .iter()
            .count() as u128;
        assert_eq!(count_results(&m, &slp).unwrap(), enumerated);
    }

    #[test]
    fn counts_astronomically_large_relations() {
        // (ab)^(2^30): exactly 2^30 results for the ab-block query, counted
        // from a ~100-rule SLP without enumerating a single one.
        let m = regex::compile_deterministic(".*x{ab}.*", b"ab").unwrap();
        let slp = families::power_word(b"ab", 1 << 30);
        assert_eq!(count_results(&m, &slp).unwrap(), 1 << 30);
        // And the unary spanner x{a} over a^(2^40) has 2^40 results.
        let m = regex::compile_deterministic(".*x{a}.*", b"a").unwrap();
        let slp = families::power_of_two_unary(b'a', 40);
        assert_eq!(count_results(&m, &slp).unwrap(), 1u128 << 40);
    }

    #[test]
    fn empty_relations_count_zero() {
        let m = figure_2_spanner();
        let slp = Bisection.compress(b"cccc");
        assert_eq!(count_results(&m, &slp).unwrap(), 0);
    }

    #[test]
    fn nondeterministic_automata_are_rejected() {
        let m = regex::compile(".*x{a.*}.*", b"ab").unwrap();
        assert!(!m.is_deterministic());
        let slp = Bisection.compress(b"abab");
        assert!(matches!(
            count_results(&m, &slp),
            Err(EvalError::NondeterministicAutomaton)
        ));
    }
}
