//! The preprocessing of Lemma 6.5: the matrices `R_A` (for every
//! non-terminal) and `M_{T_x}` (for every leaf non-terminal), plus the
//! grammar metadata the computation and enumeration phases need.
//!
//! `M_A[i,j]` (Definition 6.2) is the set of partial marker sets `Λ` such
//! that the automaton can go from state `i` to state `j` reading the marked
//! word `m(D(A), Λ)` (non-tail-spanning).  These sets are huge for inner
//! non-terminals, so only their three-valued summary `R_A[i,j]` (empty /
//! only-∅ / something more) is precomputed; the full sets are materialised
//! lazily by the computation (Theorem 7.1) and enumeration (Theorem 8.10)
//! algorithms.  For *leaf* non-terminals the full `M_{T_x}` tables are tiny
//! (`O(|M|)` overall) and are precomputed here.
//!
//! With the `parallel` feature (default on), [`Preprocessed::build`] runs
//! the dominant `size(S)·q³` matrix pass data-parallel: the leaf tables are
//! independent, and the inner `R_A` summaries are computed level-by-level
//! over the grammar's depth strata (a non-terminal only depends on its
//! strictly shallower children), with the entries of one level mapped
//! across all cores.  [`Preprocessed::build_serial`] is always available
//! and produces bit-identical results.

pub use crate::bitmat::RMatrix;
use crate::executor::{LocalExecutor, ShardExecutor, ShardJob, ShardOutcome};
use crate::prepared::EByte;
use crate::trace::{ShardTrace, SpanRec};
use slp::{NfRule, NonTerminal, NormalFormSlp, ShardLayout, Terminal};
use spanner::{MarkedSymbol, MarkerSet, PartialMarkerSet};
use spanner_automata::nfa::{Label, Nfa};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The three-valued summary of `M_A[i,j]` (Definition 6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum REntry {
    /// `M_A[i,j] = ∅`: no marked word for `D(A)` leads from `i` to `j`.
    Bot,
    /// `M_A[i,j] = {∅}`: only the unmarked word `D(A)` leads from `i` to `j`
    /// (the paper's `℮`).
    Empty,
    /// `M_A[i,j]` contains a non-empty partial marker set (the paper's `1`).
    NonEmpty,
}

/// One shard of a scatter-gather matrix build: the rule-index block the
/// shard's independent pass covered and the non-terminal deriving the
/// shard's text (see [`Preprocessed::build_sharded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// First rule index of the shard's block.
    pub first: u32,
    /// One past the last rule index of the shard's block.
    pub last: u32,
    /// The non-terminal deriving the shard's text.
    pub root: u32,
}

/// Per-shard timing of one scatter-gather matrix build
/// ([`Preprocessed::build_sharded`]): what each independent shard pass cost
/// and what the root merge cost.  On a multi-core host the wall-clock of
/// the build is `max(shard_build) + merge` (the critical path), versus the
/// sum for a monolithic pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardBuildStats {
    /// Wall-clock of every per-shard matrix pass, in shard order.  For
    /// remote executors this is the coordinator-observed round-trip — the
    /// cost the critical path actually pays.
    pub shard_build: Vec<Duration>,
    /// Wall-clock of the root composition pass (spine + sentinel rules,
    /// merged by three-valued matrix products).
    pub merge: Duration,
    /// Number of shard passes a non-local executor could not complete and
    /// handed to the in-process fallback (always `0` for
    /// [`crate::executor::LocalExecutor`] builds).  Shards that reused a
    /// deduplicated outcome inherit its fallback flag, so this stays a
    /// per-shard count.
    pub fallbacks: usize,
    /// Number of shard passes the executor re-issued to a second backend
    /// after a latency budget expired (hedged passes; `0` for local
    /// builds).
    pub hedges: usize,
    /// Number of shards whose standalone block was structurally identical
    /// to an earlier shard's block and therefore never executed — the
    /// cross-shard sharing pass reused the earlier outcome (its
    /// `shard_build` entry is zero).
    pub deduped: usize,
    /// Span fragment of a *sampled* build: the executors' per-shard spans
    /// plus the root merge span, all in the request timebase with `None`
    /// parents (the service grafts them under its matrix-build span).
    /// Empty — and allocation-free — for unsampled builds.
    pub spans: Vec<SpanRec>,
}

impl ShardBuildStats {
    /// Number of shards.
    pub fn k(&self) -> usize {
        self.shard_build.len()
    }

    /// `max(shard_build) + merge`: the wall-clock a fully parallel
    /// scatter-gather build needs.
    pub fn critical_path(&self) -> Duration {
        self.shard_build.iter().max().copied().unwrap_or_default() + self.merge
    }

    /// `sum(shard_build) + merge`: the total work performed.
    pub fn total(&self) -> Duration {
        self.shard_build.iter().sum::<Duration>() + self.merge
    }
}

/// Preprocessed evaluation data (Lemma 6.5) plus grammar metadata.
#[derive(Debug, PartialEq, Eq)]
pub struct Preprocessed {
    /// Number of automaton states `q`.
    pub q: usize,
    /// The automaton's start state.
    pub nfa_start: usize,
    /// The automaton's accepting states `F`.
    pub nfa_accepting: Vec<usize>,
    /// Number of span variables `|X|`.
    pub num_vars: usize,
    /// The SLP's start non-terminal.
    pub start_nt: u32,
    /// `children[a] = Some((b, c))` for inner rules `A → BC`, `None` for leaves.
    pub children: Vec<Option<(u32, u32)>>,
    /// `|D(A)|` per non-terminal (the shifts used by `⊗`).
    pub lengths: Vec<u64>,
    /// Non-terminals in bottom-up (children first) order.
    pub bottom_up: Vec<u32>,
    /// `depth(A)` per non-terminal.
    pub depths: Vec<u32>,
    /// `r[a].get(i, j) = R_A[i, j]`, each matrix bit-packed into two
    /// bitplanes (see [`RMatrix`]).
    pub r: Vec<RMatrix>,
    /// For leaf non-terminals: `leaf_tables[a][i·q + j] = M_{T_x}[i, j]` as a
    /// `⪯`-sorted, duplicate-free list.
    pub leaf_tables: Vec<Option<Vec<Vec<PartialMarkerSet>>>>,
    /// The per-shard composition plan of a scatter-gather build
    /// ([`Preprocessed::build_sharded`]); empty for monolithic builds.
    pub shards: Vec<ShardInfo>,
}

/// `P_i = {(ℓ, Y) : ℓ --Y--> i with Y a marker set}` for every state `i`
/// (Lemma 6.5 proof).
fn incoming_marker_arcs<T: Terminal>(
    nfa: &Nfa<MarkedSymbol<T>>,
    q: usize,
) -> Vec<Vec<(usize, MarkerSet)>> {
    let mut incoming: Vec<Vec<(usize, MarkerSet)>> = vec![Vec::new(); q];
    for (p, label, t) in nfa.arcs() {
        if let Label::Symbol(MarkedSymbol::Markers(m)) = label {
            incoming[t].push((p, m));
        }
    }
    incoming
}

/// Builds the full leaf table `M_{T_x}` and its three-valued summary for the
/// leaf non-terminal deriving terminal `x`.
fn leaf_table<T: Terminal>(
    nfa: &Nfa<MarkedSymbol<T>>,
    incoming_markers: &[Vec<(usize, MarkerSet)>],
    q: usize,
    x: T,
) -> (Vec<Vec<PartialMarkerSet>>, RMatrix) {
    let mut table: Vec<Vec<PartialMarkerSet>> = vec![Vec::new(); q * q];
    for (p, label, t) in nfa.arcs() {
        if label == Label::Symbol(MarkedSymbol::Terminal(x)) {
            // The unmarked reading  p --x--> t.
            table[p * q + t].push(PartialMarkerSet::empty());
            // Marked readings  ℓ --Y--> p --x--> t.
            for &(l, y) in &incoming_markers[p] {
                table[l * q + t].push(PartialMarkerSet::at_position_one(y));
            }
        }
    }
    let mut summary = RMatrix::bot(q);
    for (idx, cell) in table.iter_mut().enumerate() {
        cell.sort();
        cell.dedup();
        let entry = if cell.is_empty() {
            REntry::Bot
        } else if cell.len() == 1 && cell[0].is_empty() {
            REntry::Empty
        } else {
            REntry::NonEmpty
        };
        summary.set(idx / q, idx % q, entry);
    }
    (table, summary)
}

/// One standalone shard block's full matrix pass — the unit of work behind
/// [`crate::executor::ShardExecutor`]: computes the incoming-marker index
/// for the automaton and runs [`shard_pass`] over the whole block (local
/// indices `0..n`).  Returns the block's `R` summary rows and leaf tables.
#[allow(clippy::type_complexity)]
pub(crate) fn block_pass<T: Terminal>(
    nfa: &Nfa<MarkedSymbol<T>>,
    block: &NormalFormSlp<T>,
) -> (Vec<RMatrix>, Vec<Option<Vec<Vec<PartialMarkerSet>>>>) {
    let q = nfa.num_states();
    let incoming_markers = incoming_marker_arcs(nfa, q);
    shard_pass(
        nfa,
        block,
        &incoming_markers,
        q,
        block.bottom_up_order(),
        0,
        block.num_non_terminals(),
    )
}

/// One shard's independent matrix pass over its self-contained rule block
/// `[base, base + len)`: leaf tables first, then the inner `R_A` summaries
/// over the shard's own depth strata (with the `parallel` feature the
/// strata waves are data-parallel, mirroring
/// [`Preprocessed::build_parallel`]).  Returns the block's `R` rows and
/// leaf tables indexed by `rule − base`.
#[allow(clippy::type_complexity)]
fn shard_pass<T: Terminal>(
    nfa: &Nfa<MarkedSymbol<T>>,
    slp: &NormalFormSlp<T>,
    incoming_markers: &[Vec<(usize, MarkerSet)>],
    q: usize,
    members: &[NonTerminal],
    base: usize,
    len: usize,
) -> (Vec<RMatrix>, Vec<Option<Vec<Vec<PartialMarkerSet>>>>) {
    let mut r: Vec<RMatrix> = vec![RMatrix::bot(0); len];
    let mut leaf_tables: Vec<Option<Vec<Vec<PartialMarkerSet>>>> = vec![None; len];

    // Leaf tables: independent per leaf non-terminal.
    let leaves: Vec<(NonTerminal, T)> = members
        .iter()
        .filter_map(|&a| match slp.rule(a) {
            NfRule::Leaf(x) => Some((a, x)),
            NfRule::Pair(..) => None,
        })
        .collect();
    let build_leaf = |&(_, x): &(NonTerminal, T)| leaf_table(nfa, incoming_markers, q, x);
    #[cfg(feature = "parallel")]
    let built = rayon::par_map(&leaves, build_leaf);
    #[cfg(not(feature = "parallel"))]
    let built: Vec<_> = leaves.iter().map(build_leaf).collect();
    for ((a, _), (table, summary)) in leaves.into_iter().zip(built) {
        leaf_tables[a.index() - base] = Some(table);
        r[a.index() - base] = summary;
    }

    // Inner `R_A` summaries over the shard's own depth strata: children of
    // a depth-d rule are strictly shallower, so each stratum reads only
    // strata already done.
    let max_depth = members.iter().map(|&a| slp.depth_of(a)).max().unwrap_or(0) as usize;
    let mut strata: Vec<Vec<NonTerminal>> = vec![Vec::new(); max_depth + 1];
    for &a in members {
        if matches!(slp.rule(a), NfRule::Pair(..)) {
            strata[slp.depth_of(a) as usize].push(a);
        }
    }
    for stratum in strata.iter().filter(|s| !s.is_empty()) {
        let summarise = |&a: &NonTerminal| {
            let (b, c) = slp.children(a).expect("stratum members are inner rules");
            RMatrix::product(&r[b.index() - base], &r[c.index() - base])
        };
        #[cfg(feature = "parallel")]
        let computed = rayon::par_map(stratum, summarise);
        #[cfg(not(feature = "parallel"))]
        let computed: Vec<_> = stratum.iter().map(summarise).collect();
        for (&a, summary) in stratum.iter().zip(computed) {
            r[a.index() - base] = summary;
        }
    }

    (r, leaf_tables)
}

impl Preprocessed {
    /// Runs the preprocessing of Lemma 6.5 in time `O(|M| + size(S)·q³)`.
    ///
    /// With the `parallel` feature (default on) the matrix pass is
    /// data-parallel over grammar levels; the result is identical to
    /// [`Preprocessed::build_serial`].
    pub fn build<T: Terminal>(
        nfa: &Nfa<MarkedSymbol<T>>,
        slp: &NormalFormSlp<T>,
        num_vars: usize,
    ) -> Self {
        #[cfg(feature = "parallel")]
        {
            Self::build_parallel(nfa, slp, num_vars)
        }
        #[cfg(not(feature = "parallel"))]
        {
            Self::build_serial(nfa, slp, num_vars)
        }
    }

    /// Single-threaded preprocessing (always available, identical output to
    /// [`Preprocessed::build`]).
    pub fn build_serial<T: Terminal>(
        nfa: &Nfa<MarkedSymbol<T>>,
        slp: &NormalFormSlp<T>,
        num_vars: usize,
    ) -> Self {
        let q = nfa.num_states();
        let n = slp.num_non_terminals();
        let incoming_markers = incoming_marker_arcs(nfa, q);

        // Leaf tables M_{T_x} and their R summaries.
        let mut leaf_tables: Vec<Option<Vec<Vec<PartialMarkerSet>>>> = vec![None; n];
        let mut r: Vec<RMatrix> = vec![RMatrix::bot(0); n];
        for &a in slp.bottom_up_order() {
            if let NfRule::Leaf(x) = slp.rule(a) {
                let (table, summary) = leaf_table(nfa, &incoming_markers, q, x);
                leaf_tables[a.index()] = Some(table);
                r[a.index()] = summary;
            }
        }

        // R for inner non-terminals, bottom-up (Lemma 6.5 proof).
        for &a in slp.bottom_up_order() {
            if let NfRule::Pair(b, c) = slp.rule(a) {
                r[a.index()] = RMatrix::product(&r[b.index()], &r[c.index()]);
            }
        }

        Self::assemble(nfa, slp, num_vars, r, leaf_tables)
    }

    /// Level-parallel preprocessing: leaf tables are embarrassingly
    /// parallel, and the inner `R_A` pass proceeds over depth strata of the
    /// grammar DAG (every `A → BC` has `depth(A) > depth(B), depth(C)`, so
    /// all summaries of one stratum can be computed concurrently from the
    /// strata below).
    #[cfg(feature = "parallel")]
    pub fn build_parallel<T: Terminal>(
        nfa: &Nfa<MarkedSymbol<T>>,
        slp: &NormalFormSlp<T>,
        num_vars: usize,
    ) -> Self {
        let q = nfa.num_states();
        let n = slp.num_non_terminals();
        let incoming_markers = incoming_marker_arcs(nfa, q);

        // Leaf tables M_{T_x}: independent per leaf non-terminal.
        let leaves: Vec<(NonTerminal, T)> = slp
            .bottom_up_order()
            .iter()
            .filter_map(|&a| match slp.rule(a) {
                NfRule::Leaf(x) => Some((a, x)),
                NfRule::Pair(..) => None,
            })
            .collect();
        let built = rayon::par_map(&leaves, |&(_, x)| leaf_table(nfa, &incoming_markers, q, x));
        let mut leaf_tables: Vec<Option<Vec<Vec<PartialMarkerSet>>>> = vec![None; n];
        let mut r: Vec<RMatrix> = vec![RMatrix::bot(0); n];
        for ((a, _), (table, summary)) in leaves.into_iter().zip(built) {
            leaf_tables[a.index()] = Some(table);
            r[a.index()] = summary;
        }

        // Inner R summaries, one depth stratum at a time.  The children of
        // a depth-d rule have depth < d, so bucketing ALL inner rules by
        // depth (not just contiguous topological runs, which fragment badly
        // on real grammars) yields a wave schedule: each stratum only reads
        // summaries from strictly earlier strata.  The maximum is taken over
        // every rule, not `depth(S₀)`: rules unreachable from the start may
        // be deeper than the start symbol itself.
        let max_depth = slp
            .bottom_up_order()
            .iter()
            .map(|&a| slp.depth_of(a))
            .max()
            .unwrap_or(0) as usize;
        let mut strata: Vec<Vec<NonTerminal>> = vec![Vec::new(); max_depth + 1];
        for &a in slp.bottom_up_order() {
            if matches!(slp.rule(a), NfRule::Pair(..)) {
                strata[slp.depth_of(a) as usize].push(a);
            }
        }
        for stratum in strata.iter().filter(|s| !s.is_empty()) {
            let computed = rayon::par_map(stratum, |&a| {
                let (b, c) = slp.children(a).expect("stratum members are inner rules");
                RMatrix::product(&r[b.index()], &r[c.index()])
            });
            for (&a, summary) in stratum.iter().zip(computed) {
                r[a.index()] = summary;
            }
        }

        Self::assemble(nfa, slp, num_vars, r, leaf_tables)
    }

    /// Scatter-gather preprocessing over a sharded grammar (see
    /// [`slp::shard`]): every shard's rule block is a self-contained
    /// sub-grammar, so the per-shard matrix passes (leaf tables plus a
    /// depth-strata `R_A` wave schedule *within* each shard) run fully
    /// independently — with the `parallel` feature, concurrently — and only
    /// the composition spine (shard concatenation plus the end-of-document
    /// sentinel) is merged afterwards by three-valued matrix products at
    /// the root.
    ///
    /// The output matrices are identical to [`Preprocessed::build_serial`]
    /// on the same grammar (every entry is computed by the same function
    /// from the same children); only the [`Preprocessed::shards`] metadata
    /// records the composition plan.  The returned [`ShardBuildStats`]
    /// report the per-shard and merge wall-clock.
    ///
    /// This convenience form runs every shard in-process; it is
    /// [`Preprocessed::build_sharded_with`] over the default
    /// [`LocalExecutor`].
    pub fn build_sharded(
        nfa: &Nfa<MarkedSymbol<EByte>>,
        slp: &NormalFormSlp<EByte>,
        num_vars: usize,
        layout: &ShardLayout,
    ) -> (Self, ShardBuildStats) {
        Self::build_sharded_with(nfa, slp, num_vars, layout, &LocalExecutor)
    }

    /// Scatter-gather preprocessing generic over the shard backend: the
    /// per-shard passes are delegated to `executor` as self-contained
    /// [`ShardJob`]s (standalone rebased rule blocks — never the document
    /// text), and only their summary rows come back; the leaf `M_{T_x}`
    /// tables of shards whose executor did not compute them in-process are
    /// rebuilt locally from the automaton (they depend on nothing else),
    /// and the composition spine is merged at the root from the shards'
    /// `q×q` root summaries exactly as in the local path.
    ///
    /// Every executor that honours the [`ShardExecutor`] contract yields
    /// matrices identical to [`Preprocessed::build_serial`].
    pub fn build_sharded_with(
        nfa: &Nfa<MarkedSymbol<EByte>>,
        slp: &NormalFormSlp<EByte>,
        num_vars: usize,
        layout: &ShardLayout,
        executor: &dyn ShardExecutor,
    ) -> (Self, ShardBuildStats) {
        Self::build_sharded_traced(nfa, slp, num_vars, layout, executor, None)
    }

    /// [`Preprocessed::build_sharded_with`] for a *sampled* request: the
    /// trace handle rides down into every [`ShardJob`], executors record
    /// per-shard spans in the request timebase, and the returned
    /// [`ShardBuildStats::spans`] fragment additionally covers the root
    /// merge.  Passing `None` is exactly the untraced build.
    pub fn build_sharded_traced(
        nfa: &Nfa<MarkedSymbol<EByte>>,
        slp: &NormalFormSlp<EByte>,
        num_vars: usize,
        layout: &ShardLayout,
        executor: &dyn ShardExecutor,
        trace: Option<ShardTrace>,
    ) -> (Self, ShardBuildStats) {
        let q = nfa.num_states();
        let n = slp.num_non_terminals();
        let incoming_markers = incoming_marker_arcs(nfa, q);

        // Which shard (if any) owns each rule: rules outside every block
        // form the composition spine merged at the root below.
        let mut owned: Vec<bool> = vec![false; n];
        for range in &layout.ranges {
            for i in range.clone() {
                owned[i] = true;
            }
        }

        // Cross-shard grammar sharing: standalone blocks that are
        // structurally identical (equal rules and start — common under
        // power families and repeated documents cut into equal shards)
        // run once; the duplicates reuse the canonical outcome.  The
        // content hash is only a grouping key: candidates are compared in
        // full before sharing, so a collision costs nothing but the
        // comparison.
        let blocks = layout.standalone_blocks(slp.rules());
        let mut canonical: Vec<usize> = Vec::with_capacity(blocks.len());
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, block) in blocks.iter().enumerate() {
            let reps = by_hash.entry(block.content_hash()).or_default();
            match reps.iter().copied().find(|&j| blocks[j] == *block) {
                Some(j) => canonical.push(j),
                None => {
                    reps.push(i);
                    canonical.push(i);
                }
            }
        }
        let unique: Vec<usize> = (0..blocks.len()).filter(|&i| canonical[i] == i).collect();
        let deduped = blocks.len() - unique.len();

        // Scatter: one self-contained job per *unique* shard block, fanned
        // out over the executor (concurrently with the `parallel` feature —
        // for remote executors that means wire calls to several workers in
        // flight).
        let jobs: Vec<ShardJob<'_>> = unique
            .iter()
            .map(|&shard_index| ShardJob {
                nfa,
                block: &blocks[shard_index],
                shard_index,
                trace,
            })
            .collect();
        let run_shard = |job: &ShardJob<'_>| executor.execute(job);
        #[cfg(feature = "parallel")]
        let unique_outcomes = rayon::par_map(&jobs, run_shard);
        #[cfg(not(feature = "parallel"))]
        let unique_outcomes: Vec<_> = jobs.iter().map(run_shard).collect();

        // Fan the unique outcomes back out to shard order.  Duplicates
        // clone the canonical rows at zero recorded cost but inherit its
        // fallback flag (the pass they share really did fall back);
        // iterating in reverse lets the canonical shard — always the
        // earliest of its group — take the outcome by value.
        let pos_of: HashMap<usize, usize> =
            unique.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        let mut pending: Vec<Option<ShardOutcome>> =
            unique_outcomes.into_iter().map(Some).collect();
        let mut slots: Vec<Option<ShardOutcome>> = vec![None; blocks.len()];
        for i in (0..blocks.len()).rev() {
            let pos = pos_of[&canonical[i]];
            slots[i] = Some(if canonical[i] == i {
                pending[pos].take().expect("canonical outcome taken once")
            } else {
                let o = pending[pos]
                    .as_ref()
                    .expect("duplicates resolve before canonical");
                ShardOutcome {
                    rows: o.rows.clone(),
                    leaf_tables: o.leaf_tables.clone(),
                    elapsed: Duration::ZERO,
                    fallback: o.fallback,
                    hedged: false,
                    spans: Vec::new(),
                }
            });
        }
        let outcomes: Vec<ShardOutcome> = slots.into_iter().map(Option::unwrap).collect();

        // Gather: stitch the per-shard summary rows (and leaf tables,
        // rebuilt from the automaton where the executor did not supply
        // them) into the global tables.
        let mut leaf_tables: Vec<Option<Vec<Vec<PartialMarkerSet>>>> = vec![None; n];
        let mut r: Vec<RMatrix> = vec![RMatrix::bot(0); n];
        let mut shard_build = Vec::with_capacity(outcomes.len());
        let mut fallbacks = 0usize;
        let mut hedges = 0usize;
        let mut spans: Vec<SpanRec> = Vec::new();
        for ((range, block), mut outcome) in layout.ranges.iter().zip(&blocks).zip(outcomes) {
            spans.append(&mut outcome.spans);
            assert_eq!(
                outcome.rows.len(),
                range.len(),
                "executor '{}' returned {} rows for a {}-rule block",
                executor.name(),
                outcome.rows.len(),
                range.len(),
            );
            let tables = outcome.leaf_tables.unwrap_or_else(|| {
                block
                    .rules()
                    .iter()
                    .map(|rule| match rule {
                        NfRule::Leaf(x) => Some(leaf_table(nfa, &incoming_markers, q, *x).0),
                        NfRule::Pair(..) => None,
                    })
                    .collect()
            });
            for (offset, (row, table)) in outcome.rows.into_iter().zip(tables).enumerate() {
                r[range.start + offset] = row;
                leaf_tables[range.start + offset] = table;
            }
            shard_build.push(outcome.elapsed);
            fallbacks += usize::from(outcome.fallback);
            hedges += usize::from(outcome.hedged);
        }

        // Merge: the composition spine (and any rules outside every shard
        // block, e.g. the end-of-document sentinel) bottom-up at the root.
        // The spine's children are shard roots, so this pass consumes only
        // the shards' q×q root summaries.
        let merge_start = Instant::now();
        for &a in slp.bottom_up_order() {
            if owned[a.index()] {
                continue;
            }
            match slp.rule(a) {
                NfRule::Leaf(x) => {
                    let (table, summary) = leaf_table(nfa, &incoming_markers, q, x);
                    leaf_tables[a.index()] = Some(table);
                    r[a.index()] = summary;
                }
                NfRule::Pair(b, c) => {
                    r[a.index()] = RMatrix::product(&r[b.index()], &r[c.index()]);
                }
            }
        }
        let merge = merge_start.elapsed();
        if let Some(trace) = trace.filter(|t| t.ctx.sampled) {
            spans.push(SpanRec {
                name: "gather_products".to_string(),
                start_us: trace.offset_us(merge_start),
                dur_us: merge.as_micros() as u64,
                parent: None,
                attrs: vec![("shards".to_string(), layout.ranges.len().to_string())],
            });
        }

        let mut pre = Self::assemble(nfa, slp, num_vars, r, leaf_tables);
        pre.shards = layout
            .ranges
            .iter()
            .zip(&layout.roots)
            .map(|(range, &root)| ShardInfo {
                first: range.start as u32,
                last: range.end as u32,
                root,
            })
            .collect();
        (
            pre,
            ShardBuildStats {
                shard_build,
                merge,
                fallbacks,
                hedges,
                deduped,
                spans,
            },
        )
    }

    /// Packs the computed matrices together with the grammar metadata the
    /// evaluation phases need.
    fn assemble<T: Terminal>(
        nfa: &Nfa<MarkedSymbol<T>>,
        slp: &NormalFormSlp<T>,
        num_vars: usize,
        r: Vec<RMatrix>,
        leaf_tables: Vec<Option<Vec<Vec<PartialMarkerSet>>>>,
    ) -> Self {
        let q = nfa.num_states();
        let n = slp.num_non_terminals();
        let children: Vec<Option<(u32, u32)>> = (0..n)
            .map(|a| match slp.rule(NonTerminal(a as u32)) {
                NfRule::Leaf(_) => None,
                NfRule::Pair(b, c) => Some((b.0, c.0)),
            })
            .collect();
        let lengths: Vec<u64> = (0..n)
            .map(|a| slp.derived_len(NonTerminal(a as u32)))
            .collect();
        let depths: Vec<u32> = (0..n)
            .map(|a| slp.depth_of(NonTerminal(a as u32)))
            .collect();

        Preprocessed {
            q,
            nfa_start: nfa.start(),
            nfa_accepting: nfa.accepting_states(),
            num_vars,
            start_nt: slp.start().0,
            children,
            lengths,
            bottom_up: slp.bottom_up_order().iter().map(|a| a.0).collect(),
            depths,
            r,
            leaf_tables,
            shards: Vec::new(),
        }
    }

    /// `R_A[i, j]`.
    #[inline]
    pub fn r_entry(&self, a: u32, i: usize, j: usize) -> REntry {
        self.r[a as usize].get(i, j)
    }

    /// `M_{T_x}[i, j]` for a leaf non-terminal, as a sorted list.
    #[inline]
    pub fn leaf_set(&self, a: u32, i: usize, j: usize) -> &[PartialMarkerSet] {
        self.leaf_tables[a as usize]
            .as_ref()
            .expect("leaf_set is only called for leaf non-terminals")[i * self.q + j]
            .as_slice()
    }

    /// `true` if `a` is a leaf non-terminal.
    #[inline]
    pub fn is_leaf(&self, a: u32) -> bool {
        self.children[a as usize].is_none()
    }

    /// `I_A[i, j] = {k : R_B[i,k] ≠ ⊥ ∧ R_C[k,j] ≠ ⊥}` for an inner
    /// non-terminal `A → BC` (Definition 6.4), computed on the fly in `O(q)`.
    pub fn i_set(&self, a: u32, i: usize, j: usize) -> Vec<usize> {
        let (b, c) = self.children[a as usize].expect("i_set needs an inner non-terminal");
        let (rb, rc) = (&self.r[b as usize], &self.r[c as usize]);
        (0..self.q)
            .filter(|&k| rb.is_nonbot(i, k) && rc.is_nonbot(k, j))
            .collect()
    }

    /// The paper's `Ī_A[i, j]`: `{base}` (represented as `None`) for leaves
    /// and for entries with `R_A[i,j] = ℮`, otherwise `I_A[i,j]` wrapped in
    /// `Some`.
    pub fn i_bar(&self, a: u32, i: usize, j: usize) -> Vec<Option<usize>> {
        if self.is_leaf(a) || self.r_entry(a, i, j) == REntry::Empty {
            vec![None]
        } else {
            self.i_set(a, i, j).into_iter().map(Some).collect()
        }
    }

    /// Approximate resident size of the preprocessed matrices in bytes:
    /// the struct itself plus every owned buffer (the bit-packed `R_A`
    /// bitplanes including their row padding words, the leaf tables down
    /// to each partial marker set's entry list, and the grammar metadata
    /// vectors).
    ///
    /// This is the admission weight used by the engine's byte-budgeted
    /// matrix caches.  It is an estimate of the heap footprint (allocator
    /// slack is not modelled), but it is exact in the units that matter for
    /// relative sizing: `O(size(S)·q²)` matrix entries dominate, and those
    /// are counted precisely.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = size_of::<Self>();
        total += self.nfa_accepting.capacity() * size_of::<usize>();
        total += self.children.capacity() * size_of::<Option<(u32, u32)>>();
        total += self.lengths.capacity() * size_of::<u64>();
        total += self.bottom_up.capacity() * size_of::<u32>();
        total += self.depths.capacity() * size_of::<u32>();
        total += self.r.capacity() * size_of::<RMatrix>();
        for matrix in &self.r {
            // Both bitplanes, padding words included.
            total += matrix.heap_bytes();
        }
        total += self.leaf_tables.capacity() * size_of::<Option<Vec<Vec<PartialMarkerSet>>>>();
        for table in self.leaf_tables.iter().flatten() {
            total += table.capacity() * size_of::<Vec<PartialMarkerSet>>();
            for cell in table {
                total += cell.capacity() * size_of::<PartialMarkerSet>();
                for set in cell {
                    total += set.heap_bytes();
                }
            }
        }
        // The per-shard composition buffers of a scatter-gather build: they
        // live as long as the matrices, so the (global) budget accounting
        // must charge for them too.
        total += self.shards.capacity() * size_of::<ShardInfo>();
        total
    }

    /// The accepting states reachable from the start state on the whole
    /// document, `F' = {j ∈ F : R_{S₀}[q₀, j] ≠ ⊥}` (Theorem 7.1 / 8.10).
    pub fn reachable_accepting(&self) -> Vec<usize> {
        self.nfa_accepting
            .iter()
            .copied()
            .filter(|&j| self.r_entry(self.start_nt, self.nfa_start, j) != REntry::Bot)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::PreparedEvaluation;
    use slp::examples::{example_4_2, names_4_2};
    use spanner::examples::figure_2_spanner;

    fn prep() -> PreparedEvaluation {
        PreparedEvaluation::new(&figure_2_spanner(), &example_4_2()).unwrap()
    }

    #[test]
    fn leaf_tables_match_the_figure_4_yields() {
        // In the paper's notation (states 1..6 here are 0..5):
        // yield(Tc⟨1▷5,1⟩) = {{(⊿y,1)}} and yield(Ta⟨5▷6,1⟩) = {{(◁y,1)}}.
        let p = prep();
        let pre = &p.pre;
        // T_c is the leaf for 'c' in the *ended* SLP; find it via names_4_2
        // (indices are preserved by map_terminals / append_terminal).
        let tc = names_4_2::TC.0;
        let ta = names_4_2::TA.0;
        let set = pre.leaf_set(tc, 0, 4);
        assert_eq!(set.len(), 1);
        assert_eq!(set[0].len(), 1);
        assert_eq!(set[0].max_position(), 1);
        let set = pre.leaf_set(ta, 4, 5);
        assert_eq!(set.len(), 1);
        assert_eq!(set[0].len(), 1);
        // Unmarked self-loop readings give the {∅} entry.
        let set = pre.leaf_set(tc, 4, 4);
        assert_eq!(set.len(), 1);
        assert!(set[0].is_empty());
        assert_eq!(pre.r_entry(tc, 4, 4), REntry::Empty);
        assert_eq!(pre.r_entry(tc, 0, 4), REntry::NonEmpty);
        // No way to read 'c' from state 2 (paper state 3).
        assert_eq!(pre.r_entry(tc, 2, 2), REntry::Bot);
    }

    #[test]
    fn inner_r_entries_follow_the_example() {
        let p = prep();
        let pre = &p.pre;
        // R_C[1,1] = ℮ in the paper (aab read from state 1 to state 1 with
        // no markers possible): paper state 1 is id 0.
        assert_eq!(pre.r_entry(names_4_2::C.0, 0, 0), REntry::Empty);
        // R_A[1,5] = 1 (the ⊿y cc reading exists): ids (0, 4).
        assert_eq!(pre.r_entry(names_4_2::A.0, 0, 4), REntry::NonEmpty);
        // I_A[1,5] contains the intermediate state 1 (id 0): D(C)=aab read
        // 0→0, D(D)=cc read 0→4.
        assert!(pre.i_set(names_4_2::A.0, 0, 4).contains(&0));
    }

    #[test]
    fn reachable_accepting_is_nonempty_for_the_example() {
        let p = prep();
        // The end-transformed automaton has a single accepting state which
        // must be reachable on D# (the example has results).
        assert_eq!(p.pre.reachable_accepting().len(), 1);
    }

    #[test]
    fn build_handles_unreachable_rules_deeper_than_the_start() {
        // Rule 3 (depth 4) is unreachable from the start symbol (rule 1,
        // depth 2) but passes SLP validation; the stratum buckets must be
        // sized by the global maximum depth, not depth(S₀).
        use slp::{NfRule, NonTerminal, NormalFormSlp};
        let slp = NormalFormSlp::new(
            vec![
                NfRule::Leaf(b'a'),
                NfRule::Pair(NonTerminal(0), NonTerminal(0)),
                NfRule::Pair(NonTerminal(1), NonTerminal(1)),
                NfRule::Pair(NonTerminal(2), NonTerminal(2)),
            ],
            NonTerminal(1),
        )
        .unwrap();
        let m = figure_2_spanner();
        let prep = PreparedEvaluation::new(&m, &slp).unwrap();
        assert_eq!(prep.slp().document_len(), 3); // "aa" + sentinel
        let serial = Preprocessed::build_serial(prep.nfa(), prep.slp(), prep.num_vars());
        assert_eq!(*prep.pre, serial);
    }

    #[test]
    fn approx_bytes_scales_with_grammar_size() {
        use slp::families;
        use spanner::regex;
        let m = regex::compile(".*x{ab}.*", b"ab").unwrap();
        let small = crate::engine::PreparedDocument::new(&families::power_word(b"ab", 1 << 4));
        let large = crate::engine::PreparedDocument::new(&families::power_word(b"ab", 1 << 12));
        let q = crate::engine::PreparedQuery::determinized(&m);
        let small_pre = Preprocessed::build(q.nfa(), small.ended(), q.num_vars());
        let large_pre = Preprocessed::build(q.nfa(), large.ended(), q.num_vars());
        let (sb, lb) = (small_pre.approx_bytes(), large_pre.approx_bytes());
        // Any honest accounting covers at least the packed R bitplanes:
        // two planes of q rows of ceil(q/64) words each, per rule.
        let q = small_pre.q;
        let plane_bytes = q * q.div_ceil(64) * std::mem::size_of::<u64>();
        assert!(sb >= small_pre.r.len() * 2 * plane_bytes);
        // (ab)^2^12 has ~8 more grammar rules than (ab)^2^4; the matrices
        // grow with size(S) accordingly.
        assert!(lb > sb, "{lb} vs {sb}");
    }

    #[test]
    fn build_sharded_matches_serial_on_composed_grammars() {
        use crate::engine::{PreparedDocument, PreparedQuery};
        use crate::prepared::EByte;
        use slp::{families, shard};
        use spanner::regex;
        let m = regex::compile(".*x{a+}y{b+}.*", b"ab").unwrap();
        let query = PreparedQuery::determinized(&m);
        for doc in [
            slp::examples::example_4_2(),
            families::power_word(b"ab", 200),
        ] {
            for k in [2usize, 4, 8] {
                let sharded = shard::split(&doc, k);
                let (combined, layout) = sharded.compose();
                let ended = combined
                    .map_terminals(EByte::Byte)
                    .append_terminal(EByte::End);
                let (via_shards, stats) =
                    Preprocessed::build_sharded(query.nfa(), &ended, query.num_vars(), &layout);
                let serial = Preprocessed::build_serial(query.nfa(), &ended, query.num_vars());
                // Identical matrices; only the composition plan differs.
                assert_eq!(via_shards.r, serial.r, "k={k}");
                assert_eq!(via_shards.leaf_tables, serial.leaf_tables, "k={k}");
                assert_eq!(via_shards.shards.len(), sharded.k(), "k={k}");
                assert_eq!(stats.k(), sharded.k());
                assert!(stats.critical_path() <= stats.total());
                // And the sharded evaluation agrees with the monolithic one.
                let monolithic = PreparedDocument::new(&doc);
                let mono_pre =
                    Preprocessed::build(query.nfa(), monolithic.ended(), query.num_vars());
                assert_eq!(
                    via_shards.reachable_accepting(),
                    mono_pre.reachable_accepting()
                );
            }
        }
    }

    #[test]
    fn approx_bytes_charges_for_the_composition_plan() {
        use crate::engine::PreparedQuery;
        use crate::prepared::EByte;
        use slp::{families, shard};
        use spanner::regex;
        let m = regex::compile(".*x{ab}.*", b"ab").unwrap();
        let query = PreparedQuery::determinized(&m);
        let doc = families::power_word(b"ab", 128);
        let sharded = shard::split(&doc, 4);
        let (combined, layout) = sharded.compose();
        let ended = combined
            .map_terminals(EByte::Byte)
            .append_terminal(EByte::End);
        let (pre, _) = Preprocessed::build_sharded(query.nfa(), &ended, query.num_vars(), &layout);
        let with_plan = pre.approx_bytes();
        let plan_bytes = pre.shards.capacity() * std::mem::size_of::<ShardInfo>();
        assert!(plan_bytes > 0);
        // Stripping the plan must reduce the reported footprint by exactly
        // the buffer the plan occupies: the accounting is honest.
        let mut stripped = pre;
        stripped.shards = Vec::new();
        assert_eq!(stripped.approx_bytes(), with_plan - plan_bytes);
    }

    #[test]
    fn i_bar_handles_leaves_and_empty_entries() {
        let p = prep();
        let pre = &p.pre;
        assert_eq!(pre.i_bar(names_4_2::TC.0, 4, 4), vec![None]);
        assert_eq!(pre.i_bar(names_4_2::C.0, 0, 0), vec![None]);
        assert!(!pre.i_bar(names_4_2::A.0, 0, 4).contains(&None));
    }
}
