//! The multi-tenant evaluation service: `&self` evaluation over a shared
//! query/document pool, task-oriented requests and memory-bounded matrix
//! caches.
//!
//! The paper's whole economic argument is that the Lemma 6.5 preprocessing
//! is *reusable*: pay `O(|M| + size(S)·q³)` once per (query, document) pair,
//! then answer every task from the cached matrices.  [`Service`] turns that
//! into a serving contract:
//!
//! * **`&self` evaluation.**  [`Service::run`] and [`Service::run_batch`]
//!   take `&self`; the service is `Sync`, so any number of threads can
//!   evaluate simultaneously over one shared instance.  The matrix cache is
//!   one service-wide sharded `RwLock` map of `Arc<Preprocessed>` keyed by
//!   (document, query) pairs (see [`crate::cache::MatrixCache`]): hits take
//!   a read lock only, and a concurrent duplicate build of the same pair is
//!   benign — matrices are deterministic and read-only after construction,
//!   the first insert wins and the loser adopts it.
//! * **Task-oriented requests.**  A [`TaskRequest`] names a pooled query, a
//!   pooled document and a [`Task`]; the [`TaskResponse`] carries the
//!   [`TaskOutcome`] plus per-request [`RequestStats`] (cache hit/miss,
//!   matrix build time, result count).  Asking for `Count` never
//!   materialises tuples; `Enumerate { skip, limit }` streams just the
//!   window it needs.
//! * **Scatter-gather over shards.**  [`Service::add_document_sharded`]
//!   registers a document split at the start rule into `k` balanced
//!   sub-grammars; its matrix builds run one independent pass per shard and
//!   merge by matrix products at the root, with results identical to the
//!   monolithic path.  [`TaskResponse::shard_stats`] reports what each
//!   shard and the merge cost; [`Service::run_batch`] fans requests (and
//!   thus shard builds) out across a thread scope.
//! * **One global cache budget.**  [`ServiceBuilder::cache_budget`] caps
//!   the bytes of preprocessed matrices resident *service-wide*: every
//!   document — and every shard of every document — competes for one pool
//!   with LRU eviction under one shared eviction clock; evicted pairs are
//!   transparently rebuilt on next use.
//!
//! ```
//! use slp::families;
//! use spanner::regex;
//! use spanner_slp_core::service::{Service, Task, TaskRequest};
//!
//! let service = Service::new();
//! let q = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
//! let d = service.add_document(&families::power_word(b"ab", 1000));
//! let response = service
//!     .run(&TaskRequest { query: q, doc: d, task: Task::Count })
//!     .unwrap();
//! assert_eq!(response.outcome.as_count(), Some(1000));
//! assert!(!response.stats.cache_hit); // first touch of the pair builds
//! let again = service
//!     .run(&TaskRequest { query: q, doc: d, task: Task::NonEmptiness })
//!     .unwrap();
//! assert!(again.stats.cache_hit); // every later task reuses the matrices
//! ```

use crate::cache::{CacheLookup, MatrixCache};
use crate::engine::{DocumentId, Evaluation, PreparedDocument, PreparedQuery, QueryId};
use crate::error::EvalError;
use crate::executor::{LocalExecutor, ShardExecutor};
use crate::matrices::ShardBuildStats;
use crate::trace::Tracer;
use crate::{compute, count, enumerate, model_check};
use slp::NormalFormSlp;
use spanner::{SpanTuple, SpannerAutomaton};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// One evaluation task over a (query, document) pair — the request side of
/// the paper's task suite (Theorems 5.1, 7.1, 8.10 and the counting
/// extension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Task {
    /// Is `⟦M⟧(D) ≠ ∅`?  (Theorem 5.1(1); `O(|F|)` from the matrices.)
    NonEmptiness,
    /// Is the given tuple in `⟦M⟧(D)`?  (Theorem 5.1(2).)
    ModelCheck(SpanTuple),
    /// `|⟦M⟧(D)|` without materialising any tuple (counting extension).
    Count,
    /// Materialise `⟦M⟧(D)` (Theorem 7.1), keeping at most `limit` tuples
    /// (`None` = all).  The bound trims the response; the computation
    /// itself is the full `O(size(S)·r)` pass.
    Compute {
        /// Maximum number of tuples to return (`None` = no bound).
        limit: Option<usize>,
    },
    /// Stream a window of `⟦M⟧(D)` with the paper's `O(depth(S)·|X|)`
    /// delay (Theorem 8.10): skip the first `skip` results, then return up
    /// to `limit` (`None` = all remaining).  Unlike [`Task::Compute`], cost
    /// is proportional to `skip + limit`, not to `|⟦M⟧(D)|`.
    Enumerate {
        /// Number of leading results to discard.
        skip: usize,
        /// Maximum number of tuples to return after skipping (`None` = no
        /// bound).
        limit: Option<usize>,
    },
}

impl Task {
    /// All task-kind names in [`Task::kind_index`] order — the label set
    /// of per-kind metric arrays.
    pub const KIND_NAMES: [&'static str; 5] = [
        "non_emptiness",
        "model_check",
        "count",
        "compute",
        "enumerate",
    ];

    /// Stable index of this task's kind: the slot order of
    /// [`TaskKindCounts`] and of per-kind histogram arrays.
    pub fn kind_index(&self) -> usize {
        match self {
            Task::NonEmptiness => 0,
            Task::ModelCheck(_) => 1,
            Task::Count => 2,
            Task::Compute { .. } => 3,
            Task::Enumerate { .. } => 4,
        }
    }

    /// Stable snake_case name of this task's kind (span attributes, scrape
    /// labels).
    pub fn kind_name(&self) -> &'static str {
        Task::KIND_NAMES[self.kind_index()]
    }

    /// Which QoS cost class this task belongs to.
    ///
    /// NonEmptiness / ModelCheck / Count answer straight from the prepared
    /// matrices in `O(|F|)`-ish time; Compute and Enumerate walk the
    /// document and can hold a worker for milliseconds.  Schedulers use the
    /// split so one burst of scans cannot starve point lookups.
    pub fn class(&self) -> TaskClass {
        match self {
            Task::NonEmptiness | Task::ModelCheck(_) | Task::Count => TaskClass::Cheap,
            Task::Compute { .. } | Task::Enumerate { .. } => TaskClass::Expensive,
        }
    }
}

/// Coarse cost class of a [`Task`] — the task-kind half of the QoS
/// scheduler's (class, tenant) queue key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskClass {
    /// Matrix-lookup tasks: non-emptiness, model-check, count.
    Cheap,
    /// Document-walking tasks: compute, enumerate.
    Expensive,
}

impl TaskClass {
    /// All classes, in [`TaskClass::index`] order.
    pub const ALL: [TaskClass; 2] = [TaskClass::Cheap, TaskClass::Expensive];

    /// Stable slot index (metric arrays, queue-depth gauges).
    pub fn index(self) -> usize {
        match self {
            TaskClass::Cheap => 0,
            TaskClass::Expensive => 1,
        }
    }

    /// Stable scrape-label name.
    pub fn name(self) -> &'static str {
        match self {
            TaskClass::Cheap => "cheap",
            TaskClass::Expensive => "expensive",
        }
    }

    /// Relative scheduling weight of the class itself (multiplied by the
    /// tenant's admission weight to form a queue's WFQ weight).  Cheap
    /// tasks get 8× the service share per unit queued, which keeps point
    /// lookups flowing under scan load while still draining scans.
    pub fn weight(self) -> u64 {
        match self {
            TaskClass::Cheap => 8,
            TaskClass::Expensive => 1,
        }
    }
}

/// A request against a [`Service`]: which pooled query, which pooled
/// document, which task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskRequest {
    /// The pooled query to evaluate.
    pub query: QueryId,
    /// The pooled document to evaluate on.
    pub doc: DocumentId,
    /// What to compute for the pair.
    pub task: Task,
}

/// The result payload of a [`TaskResponse`], one variant per [`Task`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskOutcome {
    /// Answer to [`Task::NonEmptiness`].
    NonEmpty(bool),
    /// Answer to [`Task::ModelCheck`].
    Checked(bool),
    /// Answer to [`Task::Count`].
    Count(u128),
    /// Answer to [`Task::Compute`] / [`Task::Enumerate`].
    Tuples(Vec<SpanTuple>),
}

impl TaskOutcome {
    /// The Boolean payload of [`NonEmpty`](TaskOutcome::NonEmpty) or
    /// [`Checked`](TaskOutcome::Checked).
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            TaskOutcome::NonEmpty(b) | TaskOutcome::Checked(b) => Some(b),
            _ => None,
        }
    }

    /// The payload of [`Count`](TaskOutcome::Count).
    pub fn as_count(&self) -> Option<u128> {
        match *self {
            TaskOutcome::Count(n) => Some(n),
            _ => None,
        }
    }

    /// The tuples of [`Tuples`](TaskOutcome::Tuples).
    pub fn tuples(&self) -> Option<&[SpanTuple]> {
        match self {
            TaskOutcome::Tuples(t) => Some(t),
            _ => None,
        }
    }

    /// Consumes the outcome into its tuples ([`Tuples`](TaskOutcome::Tuples)
    /// only).
    pub fn into_tuples(self) -> Option<Vec<SpanTuple>> {
        match self {
            TaskOutcome::Tuples(t) => Some(t),
            _ => None,
        }
    }
}

/// Per-request statistics carried on every [`TaskResponse`].
///
/// [`Task::ModelCheck`] never consults the matrix cache (Theorem 5.1(2)
/// works on the original automaton × SLP), so its responses report
/// `cache_hit: false` with zero build time and zero matrix bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestStats {
    /// `true` if the pair's matrices were already resident.
    pub cache_hit: bool,
    /// Time this request spent building the Lemma 6.5 matrices (zero on a
    /// cache hit).
    pub matrix_build: Duration,
    /// [`crate::matrices::Preprocessed::approx_bytes`] of the pair's
    /// matrices.
    pub matrix_bytes: usize,
    /// Time spent answering the task itself (after the matrices were in
    /// hand).
    pub task_time: Duration,
    /// Number of tuples materialised into the response (zero for the
    /// Boolean and counting tasks).
    pub results: u64,
}

/// The response to one [`TaskRequest`]: the outcome plus request statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskResponse {
    /// The task's result.
    pub outcome: TaskOutcome,
    /// What the request cost.
    pub stats: RequestStats,
    /// Per-shard build and root-merge timings, present exactly when this
    /// request ran a scatter-gather matrix build (a cache miss on a sharded
    /// document); `None` on hits, monolithic documents and
    /// [`Task::ModelCheck`].
    pub shard_stats: Option<ShardBuildStats>,
}

/// Cumulative request counts broken down by [`Task`] kind, part of
/// [`ServiceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskKindCounts {
    /// [`Task::NonEmptiness`] requests.
    pub non_emptiness: u64,
    /// [`Task::ModelCheck`] requests.
    pub model_check: u64,
    /// [`Task::Count`] requests.
    pub count: u64,
    /// [`Task::Compute`] requests.
    pub compute: u64,
    /// [`Task::Enumerate`] requests (including streamed ones).
    pub enumerate: u64,
}

impl TaskKindCounts {
    /// Sum over all task kinds (equals [`ServiceStats::requests`]).
    pub fn total(&self) -> u64 {
        self.non_emptiness + self.model_check + self.count + self.compute + self.enumerate
    }
}

/// Aggregate service counters, a snapshot of [`Service::stats`].
///
/// `cache_hits + cache_misses` need not equal `requests`:
/// [`Task::ModelCheck`] requests skip the cache entirely, while ad-hoc
/// [`Service::evaluation`] bindings and the duplicate pre-build of
/// [`Service::run_batch`] consult it without counting as requests.
///
/// The snapshot is *request-atomic*: every request commits all its counter
/// updates (request total, per-kind count, cache hit/miss) in one step, and
/// [`Service::stats`] excludes commits in flight — a snapshot taken under a
/// concurrent [`Service::run_batch`] never observes a request that is
/// counted in `requests` but missing from `by_task`, or vice versa.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Total requests served (including failed ones).
    pub requests: u64,
    /// `requests` broken down by task kind.
    pub by_task: TaskKindCounts,
    /// Cache lookups answered from resident matrices.
    pub cache_hits: u64,
    /// Cache lookups that built matrices.
    pub cache_misses: u64,
    /// Matrix sets evicted from the shared cache pool (lifetime total).
    pub evictions: u64,
    /// Bytes of preprocessed matrices currently resident in the shared
    /// cache pool (all documents).
    pub resident_bytes: usize,
    /// Matrix sets currently resident in the shared cache pool.
    pub resident_entries: usize,
}

/// A tenant namespace identifier.  [`TenantId::DEFAULT`] (id 0) always
/// exists, carries no quotas unless explicitly configured, and is where the
/// tenant-unaware registration methods ([`Service::add_document`] and
/// friends) place their documents — so single-tenant callers never see the
/// tenancy machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The always-present default tenant.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-tenant quotas and resource shares.  Quota fields use `0` to mean
/// "unlimited"; `cache_share` is an absolute byte reservation carved from
/// the service's global matrix-cache budget (`0` = no reservation), and
/// `admission_weight` is consumed by serving front-ends to weight their
/// bounded-admission gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Human-readable tenant name.
    pub name: String,
    /// Maximum live documents (`0` = unlimited).
    pub max_docs: u64,
    /// Maximum total corpus bytes over live documents (`0` = unlimited).
    pub max_corpus_bytes: u64,
    /// Reserved matrix-cache bytes (see
    /// [`crate::cache::MatrixCache::set_tenant_share`]); `0` = none.
    pub cache_share: usize,
    /// Relative admission weight for serving front-ends.
    pub admission_weight: u32,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            name: String::new(),
            max_docs: 0,
            max_corpus_bytes: 0,
            cache_share: 0,
            admission_weight: 1,
        }
    }
}

/// Live resource usage of one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Live documents registered by the tenant.
    pub docs: u64,
    /// Total corpus bytes (original document lengths) of those documents.
    pub corpus_bytes: u64,
}

/// A registration rejected by tenant quota enforcement.
///
/// Deliberately *not* an [`EvalError`]: quota exhaustion is an admission
/// decision, and front-ends must surface it as a structured quota error —
/// distinguishable from both evaluation failures and `busy` backpressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaError {
    /// The registering tenant does not exist.
    UnknownTenant,
    /// The tenant is at its document-count quota.
    Docs {
        /// Configured maximum.
        limit: u64,
        /// Live documents at rejection time.
        used: u64,
    },
    /// The registration would push the tenant over its corpus-byte quota.
    CorpusBytes {
        /// Configured maximum.
        limit: u64,
        /// Live corpus bytes at rejection time.
        used: u64,
        /// Bytes the rejected document would have added.
        requested: u64,
    },
}

impl std::fmt::Display for QuotaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuotaError::UnknownTenant => write!(f, "unknown tenant"),
            QuotaError::Docs { limit, used } => {
                write!(f, "document quota exhausted ({used}/{limit} documents)")
            }
            QuotaError::CorpusBytes {
                limit,
                used,
                requested,
            } => write!(
                f,
                "corpus byte quota exhausted ({used}/{limit} bytes, {requested} requested)"
            ),
        }
    }
}

impl std::error::Error for QuotaError {}

/// A tenant's registry entry.
#[derive(Debug)]
struct TenantState {
    config: TenantConfig,
    usage: TenantUsage,
}

/// Which tenant owns a document slot, and what it was charged.
#[derive(Debug, Clone, Copy)]
struct DocOwner {
    tenant: u32,
    bytes: u64,
}

/// Configuration assembled by [`ServiceBuilder`].
#[derive(Debug, Clone)]
struct ServiceConfig {
    cache_budget: Option<usize>,
    determinize: bool,
    parallel: bool,
    shard_executor: Arc<dyn ShardExecutor>,
}

/// Builder for a [`Service`]: cache budget, determinisation policy,
/// parallelism toggle, shard execution backend.
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    config: ServiceConfig,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            config: ServiceConfig {
                cache_budget: None,
                determinize: true,
                parallel: true,
                shard_executor: Arc::new(LocalExecutor),
            },
        }
    }
}

impl ServiceBuilder {
    /// Starts from the defaults: unbounded caches, determinising query
    /// registration, parallel batches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the preprocessed-matrix bytes resident **service-wide** at
    /// `bytes`: all documents (and all shards of all documents) compete for
    /// one pool, with LRU eviction over (document, query) pairs driven by
    /// one shared eviction clock.  The total resident footprint is bounded
    /// by `bytes` no matter how many documents are registered.
    pub fn cache_budget(mut self, bytes: usize) -> Self {
        self.config.cache_budget = Some(bytes);
        self
    }

    /// Removes the cache budget (the default): matrices accumulate until
    /// [`PreparedDocument::clear_cache`] is called.
    pub fn unbounded_cache(mut self) -> Self {
        self.config.cache_budget = None;
        self
    }

    /// Sets the determinisation policy for [`Service::add_query`].  With
    /// `true` (the default) every pooled query is determinised, so the full
    /// task suite is available.  With `false` queries keep their prepared
    /// form; [`Task::Count`] and [`Task::Enumerate`] then fail with
    /// [`EvalError::NondeterministicAutomaton`] for non-deterministic
    /// queries (duplicate-freeness needs determinism, Lemma 8.8), while the
    /// other tasks work unchanged.
    pub fn determinize(mut self, yes: bool) -> Self {
        self.config.determinize = yes;
        self
    }

    /// Enables or disables the thread fan-out in [`Service::run_batch`]
    /// (default on; only effective with the `parallel` feature).
    pub fn parallel(mut self, yes: bool) -> Self {
        self.config.parallel = yes;
        self
    }

    /// Sets the backend the per-shard matrix passes of *sharded* documents
    /// run on, service-wide.  The default [`LocalExecutor`] runs every
    /// shard in-process; `spanner-server`'s `RemoteExecutor` ships shard
    /// blocks to a pool of worker processes (falling back to local
    /// execution on worker failure, so results are never lost).
    /// Monolithic documents are unaffected.
    pub fn shard_executor(mut self, executor: Arc<dyn ShardExecutor>) -> Self {
        self.config.shard_executor = executor;
        self
    }

    /// Builds the (empty) service.
    pub fn build(self) -> Service {
        let mut tenants = HashMap::new();
        tenants.insert(
            0,
            TenantState {
                config: TenantConfig {
                    name: "default".to_string(),
                    ..TenantConfig::default()
                },
                usage: TenantUsage::default(),
            },
        );
        Service {
            queries: RwLock::new(Vec::new()),
            documents: RwLock::new(Vec::new()),
            cache: Arc::new(MatrixCache::new(self.config.cache_budget)),
            config: self.config,
            counters: Counters::default(),
            measured_ratios: RwLock::new(HashMap::new()),
            tenants: RwLock::new(tenants),
            doc_owners: RwLock::new(HashMap::new()),
            auto_probes: AtomicU64::new(0),
        }
    }
}

/// The service-wide request counters, updated once per request under a
/// shared gate so [`Service::stats`] can take a request-atomic snapshot.
///
/// Writers (requests committing their counts) take the gate in *read* mode
/// — commits from any number of threads proceed in parallel, each a handful
/// of relaxed `fetch_add`s.  [`Service::stats`] takes the gate in *write*
/// mode, which excludes half-committed requests from the snapshot without
/// blocking evaluation itself (the matrices are built and the task answered
/// entirely outside the gate).
#[derive(Debug, Default)]
struct Counters {
    /// Writers hold this shared; `stats()` holds it exclusively.
    gate: RwLock<()>,
    requests: AtomicU64,
    /// One slot per task kind, indexed by [`task_kind_index`].
    by_task: [AtomicU64; 5],
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// The `Counters::by_task` slot of a task.
fn task_kind_index(task: &Task) -> usize {
    task.kind_index()
}

impl Counters {
    /// Commits one request (and/or one cache lookup) atomically with
    /// respect to [`Counters::snapshot`].
    fn commit(&self, task: Option<&Task>, lookup: Option<&CacheLookup>) {
        let _shared = self.gate.read().expect("stats gate poisoned");
        if let Some(task) = task {
            self.requests.fetch_add(1, Ordering::Relaxed);
            self.by_task[task_kind_index(task)].fetch_add(1, Ordering::Relaxed);
        }
        if let Some(lookup) = lookup {
            if lookup.hit {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Reads all counters with no commit in flight.
    fn snapshot(&self) -> (u64, TaskKindCounts, u64, u64) {
        let _exclusive = self.gate.write().expect("stats gate poisoned");
        let kind = |i: usize| self.by_task[i].load(Ordering::Relaxed);
        (
            self.requests.load(Ordering::Relaxed),
            TaskKindCounts {
                non_emptiness: kind(0),
                model_check: kind(1),
                count: kind(2),
                compute: kind(3),
                enumerate: kind(4),
            },
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }
}

/// A shared pool of prepared queries and documents with concurrent, task-
/// oriented evaluation over the cross-product.  See the module docs for the
/// concurrency contract and [`ServiceBuilder`] for the knobs.
///
/// `Service` is `Sync`: registration and evaluation all take `&self`, so a
/// single instance can be shared across threads (e.g. behind an `Arc` in a
/// server) without external locking.
#[derive(Debug)]
pub struct Service {
    queries: RwLock<Vec<Arc<PreparedQuery>>>,
    /// `None` slots are removed documents: ids stay stable, the Arc (and
    /// its cache entries, via [`MatrixCache::clear_doc`]) are gone.
    documents: RwLock<Vec<Option<Arc<PreparedDocument>>>>,
    /// The one matrix pool every registered document shares: a global byte
    /// budget and a shared eviction clock across documents and shards.
    cache: Arc<MatrixCache>,
    config: ServiceConfig,
    counters: Counters,
    /// Last measured `critical_path()/total()` ratio per document index,
    /// recorded from the [`ShardBuildStats`] of warm traffic and consumed
    /// by [`Service::suggest_shard_count`].
    measured_ratios: RwLock<HashMap<usize, f64>>,
    /// The tenant registry: id → configuration + live usage.  Tenant 0 (the
    /// default) is created with the service and never removed.
    tenants: RwLock<HashMap<u32, TenantState>>,
    /// Document slot index → owning tenant and charged corpus bytes, for
    /// releasing quota on [`Service::remove_document`].
    doc_owners: RwLock<HashMap<usize, DocOwner>>,
    /// Number of `auto_k` probe splits run by auto registrations — warm
    /// restarts replaying recorded shard counts must leave this at zero.
    auto_probes: AtomicU64,
}

impl Default for Service {
    fn default() -> Self {
        ServiceBuilder::new().build()
    }
}

impl Service {
    /// Creates a service with the default configuration (see
    /// [`ServiceBuilder`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }

    /// Registers a query, running the automaton-side preparation once
    /// (ε-removal, end-transformation, and — under the default policy —
    /// determinisation; see [`ServiceBuilder::determinize`]).
    pub fn add_query(&self, automaton: &SpannerAutomaton<u8>) -> QueryId {
        let prepared = if self.config.determinize {
            PreparedQuery::determinized(automaton)
        } else {
            PreparedQuery::new(automaton)
        };
        self.push_query(Arc::new(prepared))
    }

    /// Registers an already prepared query.  Under the determinising policy
    /// a non-deterministic query is upgraded via its ε-free automaton.
    pub fn add_prepared_query(&self, query: PreparedQuery) -> QueryId {
        let query = if self.config.determinize && !query.is_deterministic() {
            PreparedQuery::determinized(query.automaton())
        } else {
            query
        };
        self.push_query(Arc::new(query))
    }

    fn push_query(&self, query: Arc<PreparedQuery>) -> QueryId {
        let mut queries = self.queries.write().expect("query pool lock poisoned");
        queries.push(query);
        QueryId(queries.len() - 1)
    }

    /// Registers a document, running the document-side preparation
    /// (`D ↦ D·#`) once.  Its matrices live in the service's shared,
    /// globally budgeted pool.  The document lands in the default tenant's
    /// namespace; use [`Service::add_document_for`] for tenant-scoped,
    /// quota-checked registration.
    pub fn add_document(&self, document: &NormalFormSlp<u8>) -> DocumentId {
        self.add_document_for(TenantId::DEFAULT, document)
            .expect("default tenant rejected a registration (quota configured on tenant 0)")
    }

    /// Registers a document into `tenant`'s namespace, enforcing the
    /// tenant's document-count and corpus-byte quotas.
    pub fn add_document_for(
        &self,
        tenant: TenantId,
        document: &NormalFormSlp<u8>,
    ) -> Result<DocumentId, QuotaError> {
        self.add_owned(tenant, document.document_len(), || {
            PreparedDocument::new(document)
        })
    }

    /// Registers a document split into `k` balanced shards: matrix builds
    /// for it scatter one independent pass per shard and gather at the root
    /// (see [`PreparedDocument::sharded`]); task results are identical to
    /// [`Service::add_document`], and the per-request
    /// [`TaskResponse::shard_stats`] report what each shard cost.
    pub fn add_document_sharded(&self, document: &NormalFormSlp<u8>, k: usize) -> DocumentId {
        self.add_document_sharded_for(TenantId::DEFAULT, document, k)
            .expect("default tenant rejected a registration (quota configured on tenant 0)")
    }

    /// [`Service::add_document_sharded`] into `tenant`'s namespace, with
    /// quota enforcement.
    pub fn add_document_sharded_for(
        &self,
        tenant: TenantId,
        document: &NormalFormSlp<u8>,
        k: usize,
    ) -> Result<DocumentId, QuotaError> {
        self.add_owned(tenant, document.document_len(), || {
            PreparedDocument::sharded(document, k)
        })
    }

    /// Registers a document with an auto-tuned shard count: a cheap probe
    /// split estimates how well the grammar partitions
    /// ([`slp::shard::estimate_critical_ratio`]) and
    /// [`slp::shard::auto_k`] turns that, the host's core count and the
    /// grammar size into `k`.  Exponentially shared grammars (power
    /// families) and small documents stay monolithic; large block-like
    /// documents scatter over the cores.  Results are identical to
    /// [`Service::add_document`] either way.
    pub fn add_document_auto(&self, document: &NormalFormSlp<u8>) -> DocumentId {
        self.add_document_auto_for(TenantId::DEFAULT, document)
            .expect("default tenant rejected a registration (quota configured on tenant 0)")
    }

    /// [`Service::add_document_auto`] into `tenant`'s namespace, with quota
    /// enforcement.  Each probe split it runs increments
    /// [`Service::auto_probe_count`] — replay paths registering recorded
    /// shard counts bypass this method entirely and leave the counter
    /// untouched.
    pub fn add_document_auto_for(
        &self,
        tenant: TenantId,
        document: &NormalFormSlp<u8>,
    ) -> Result<DocumentId, QuotaError> {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Cheap gates first: ratio 0.0 is the most shard-friendly input
        // auto_k can see, so if even that says "monolithic" (single core,
        // small grammar) the probe split cannot change the answer — skip
        // the surgery entirely.
        if slp::shard::auto_k(document.size(), cores, 0.0) <= 1 {
            return self.add_document_for(tenant, document);
        }
        self.auto_probes.fetch_add(1, Ordering::Relaxed);
        let sharded = slp::shard::split(document, Self::probe_k(cores));
        let ratio = slp::shard::critical_ratio(&sharded, document.size());
        match slp::shard::auto_k(document.size(), cores, ratio) {
            0 | 1 => self.add_document_for(tenant, document),
            // The probe split *is* the split we want — reuse it instead of
            // cutting the grammar a second time.
            k if k == sharded.k() => self.add_owned(tenant, document.document_len(), || {
                PreparedDocument::sharded_precut(document, &sharded)
            }),
            k => self.add_document_sharded_for(tenant, document, k),
        }
    }

    /// Number of `auto_k` probe splits run by the auto registrations since
    /// the service was built.  A warm restart that replays recorded shard
    /// counts must leave this at zero — the whole point of persisting the
    /// tuned `k` values.
    pub fn auto_probe_count(&self) -> u64 {
        self.auto_probes.load(Ordering::Relaxed)
    }

    /// The shard count [`Service::add_document_auto`] would pick on a host
    /// with `cores` cores (exposed for tests and capacity planning).
    pub fn auto_shard_count(&self, document: &NormalFormSlp<u8>, cores: usize) -> usize {
        if slp::shard::auto_k(document.size(), cores, 0.0) <= 1 {
            return 1;
        }
        let ratio = slp::shard::estimate_critical_ratio(document, Self::probe_k(cores));
        slp::shard::auto_k(document.size(), cores, ratio)
    }

    /// Shard count of the structural probe split behind the auto policy.
    fn probe_k(cores: usize) -> usize {
        cores.clamp(2, 8)
    }

    /// Records the measured critical ratio of a scatter-gather build so
    /// [`Service::suggest_shard_count`] can re-tune from warm traffic.
    fn record_shard_stats(&self, d: DocumentId, lookup: &CacheLookup) {
        let Some(stats) = &lookup.shard_stats else {
            return;
        };
        let total = stats.total();
        if total.is_zero() {
            return;
        }
        let ratio = (stats.critical_path().as_secs_f64() / total.as_secs_f64()).clamp(0.0, 1.0);
        let mut ratios = self
            .measured_ratios
            .write()
            .expect("ratio map lock poisoned");
        // Liveness re-check under the ratio lock: a concurrent
        // `remove_document` burns the slot first and clears the ratio
        // last, so checking here (and inserting before releasing the
        // lock) can never leave a stale entry behind for a removed
        // document.
        let live = self
            .documents
            .read()
            .expect("document pool lock poisoned")
            .get(d.index())
            .is_some_and(|slot| slot.is_some());
        if live {
            ratios.insert(d.index(), ratio);
        }
    }

    /// Sweeps the matrices a request inserted for a document that was
    /// removed *while the build was in flight*: `remove_document`'s
    /// `clear_doc` runs before such a build completes its insert, so
    /// without this re-check the entry would sit in the shared pool under
    /// a burned token forever (the token is never reissued and nothing
    /// would ever clear it again).  Whichever of this sweep and the
    /// removal's clear runs last sees the entry, so every interleaving
    /// ends with the pool clean.
    fn sweep_if_removed(&self, d: DocumentId, document: &PreparedDocument, lookup: &CacheLookup) {
        if !lookup.hit && self.try_document(d).is_none() {
            document.clear_cache();
        }
    }

    /// The last `critical_path()/total()` ratio measured for a document's
    /// scatter-gather matrix builds (`None` until the first sharded build
    /// of warm traffic, and always `None` for monolithic documents).
    pub fn measured_critical_ratio(&self, d: DocumentId) -> Option<f64> {
        self.measured_ratios
            .read()
            .expect("ratio map lock poisoned")
            .get(&d.index())
            .copied()
    }

    /// Re-shard advice from warm traffic: the shard count
    /// [`slp::shard::auto_k`] picks for this document using the *measured*
    /// `critical_path()/total()` ratio of its latest scatter-gather build
    /// (recorded from [`TaskResponse::shard_stats`]) instead of the
    /// structural probe alone.  Before any sharded build has run — or for
    /// monolithic documents — this falls back to the structural estimate,
    /// so the advice is always defined.
    ///
    /// A caller acting on the advice re-registers the document
    /// ([`Service::add_document_sharded`] with the suggested `k`) and
    /// retires the old id via [`Service::remove_document`].
    pub fn suggest_shard_count(&self, d: DocumentId) -> usize {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.suggest_shard_count_for(d, cores)
    }

    /// [`Service::suggest_shard_count`] for an explicit core count
    /// (capacity planning and tests).
    pub fn suggest_shard_count_for(&self, d: DocumentId, cores: usize) -> usize {
        let document = self.document(d);
        let size = document.original().size();
        let ratio = self.measured_critical_ratio(d).unwrap_or_else(|| {
            slp::shard::estimate_critical_ratio(document.original(), Self::probe_k(cores))
        });
        slp::shard::auto_k(size, cores, ratio)
    }

    /// Registers an already prepared document, re-homing it (and any
    /// matrices it already built) onto the service's shared cache pool and
    /// onto the service-wide shard executor.  The document lands in the
    /// default tenant's namespace.
    pub fn add_prepared_document(&self, document: PreparedDocument) -> DocumentId {
        let bytes = document.document_len();
        self.charge(TenantId::DEFAULT, bytes)
            .expect("default tenant rejected a registration (quota configured on tenant 0)");
        self.register_owned(TenantId::DEFAULT, bytes, document)
    }

    /// [`Service::add_prepared_document`] into `tenant`'s namespace, with
    /// quota enforcement.
    pub fn add_prepared_document_for(
        &self,
        tenant: TenantId,
        document: PreparedDocument,
    ) -> Result<DocumentId, QuotaError> {
        let bytes = document.document_len();
        self.charge(tenant, bytes)?;
        Ok(self.register_owned(tenant, bytes, document))
    }

    /// Charges quota, then builds and registers the document.  The build
    /// runs only after the (cheap) quota check passed, so a rejected
    /// registration never pays document preparation.
    fn add_owned(
        &self,
        tenant: TenantId,
        bytes: u64,
        prepare: impl FnOnce() -> PreparedDocument,
    ) -> Result<DocumentId, QuotaError> {
        self.charge(tenant, bytes)?;
        Ok(self.register_owned(tenant, bytes, prepare()))
    }

    /// Atomically checks and reserves `bytes` + one document of `tenant`'s
    /// quota.
    fn charge(&self, tenant: TenantId, bytes: u64) -> Result<(), QuotaError> {
        let mut tenants = self.tenants.write().expect("tenant registry poisoned");
        let state = tenants
            .get_mut(&tenant.0)
            .ok_or(QuotaError::UnknownTenant)?;
        let config = &state.config;
        if config.max_docs > 0 && state.usage.docs >= config.max_docs {
            return Err(QuotaError::Docs {
                limit: config.max_docs,
                used: state.usage.docs,
            });
        }
        if config.max_corpus_bytes > 0
            && state.usage.corpus_bytes.saturating_add(bytes) > config.max_corpus_bytes
        {
            return Err(QuotaError::CorpusBytes {
                limit: config.max_corpus_bytes,
                used: state.usage.corpus_bytes,
                requested: bytes,
            });
        }
        state.usage.docs += 1;
        state.usage.corpus_bytes += bytes;
        Ok(())
    }

    /// Registers a quota-charged document under its owning tenant.
    fn register_owned(
        &self,
        tenant: TenantId,
        bytes: u64,
        mut document: PreparedDocument,
    ) -> DocumentId {
        // Assign the cache-token mapping *before* re-homing: matrices the
        // document carries in are then accounted to the right tenant.
        self.cache.assign_doc_tenant(document.token(), tenant.0);
        document.rehome_cache(self.cache.clone());
        document.set_shard_executor(self.config.shard_executor.clone());
        let id = {
            let mut documents = self.documents.write().expect("document pool lock poisoned");
            documents.push(Some(Arc::new(document)));
            DocumentId(documents.len() - 1)
        };
        self.doc_owners
            .write()
            .expect("doc owner map poisoned")
            .insert(
                id.index(),
                DocOwner {
                    tenant: tenant.0,
                    bytes,
                },
            );
        id
    }

    /// Unregisters a document: its id stops resolving (subsequent requests
    /// panic via [`Service::document`] / are rejected via
    /// [`Service::try_document`]), and every matrix the document holds in
    /// the shared cache pool is invalidated through
    /// [`MatrixCache::clear_doc`] — other documents' residents are
    /// untouched.  In-flight evaluations holding `Arc`s complete
    /// unaffected.  Returns `false` if the id was never issued or already
    /// removed.
    pub fn remove_document(&self, d: DocumentId) -> bool {
        let removed = {
            let mut documents = self.documents.write().expect("document pool lock poisoned");
            match documents.get_mut(d.index()) {
                Some(slot) => slot.take(),
                None => None,
            }
        };
        match removed {
            Some(document) => {
                document.clear_cache();
                self.measured_ratios
                    .write()
                    .expect("ratio map lock poisoned")
                    .remove(&d.index());
                // Release the owning tenant's quota charge.
                if let Some(owner) = self
                    .doc_owners
                    .write()
                    .expect("doc owner map poisoned")
                    .remove(&d.index())
                {
                    let mut tenants = self.tenants.write().expect("tenant registry poisoned");
                    if let Some(state) = tenants.get_mut(&owner.tenant) {
                        state.usage.docs = state.usage.docs.saturating_sub(1);
                        state.usage.corpus_bytes =
                            state.usage.corpus_bytes.saturating_sub(owner.bytes);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Creates a tenant.  Returns `false` (changing nothing) if the id is
    /// already taken.  The tenant's cache share is pushed onto the shared
    /// matrix pool immediately.
    pub fn create_tenant(&self, id: TenantId, config: TenantConfig) -> bool {
        let mut tenants = self.tenants.write().expect("tenant registry poisoned");
        if tenants.contains_key(&id.0) {
            return false;
        }
        self.cache.set_tenant_share(id.0, config.cache_share);
        tenants.insert(
            id.0,
            TenantState {
                config,
                usage: TenantUsage::default(),
            },
        );
        true
    }

    /// Replaces a tenant's configuration (usage is untouched; documents
    /// already over a tightened quota stay registered — only *new*
    /// registrations are checked).  Returns `false` for unknown tenants.
    pub fn update_tenant(&self, id: TenantId, config: TenantConfig) -> bool {
        let mut tenants = self.tenants.write().expect("tenant registry poisoned");
        let Some(state) = tenants.get_mut(&id.0) else {
            return false;
        };
        self.cache.set_tenant_share(id.0, config.cache_share);
        state.config = config;
        true
    }

    /// A tenant's configuration.
    pub fn tenant_config(&self, id: TenantId) -> Option<TenantConfig> {
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .get(&id.0)
            .map(|state| state.config.clone())
    }

    /// A tenant's live usage counters.
    pub fn tenant_usage(&self, id: TenantId) -> Option<TenantUsage> {
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .get(&id.0)
            .map(|state| state.usage)
    }

    /// All tenant ids, ascending (always contains the default tenant).
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self
            .tenants
            .read()
            .expect("tenant registry poisoned")
            .keys()
            .map(|&id| TenantId(id))
            .collect();
        ids.sort();
        ids
    }

    /// Matrix-cache bytes currently resident for a tenant's documents.
    pub fn tenant_cache_resident(&self, id: TenantId) -> usize {
        self.cache.resident_bytes_for_tenant(id.0)
    }

    /// The tenant owning a document id (`None` if the id was never issued
    /// or the document was removed).
    pub fn document_tenant(&self, d: DocumentId) -> Option<TenantId> {
        self.doc_owners
            .read()
            .expect("doc owner map poisoned")
            .get(&d.index())
            .map(|owner| TenantId(owner.tenant))
    }

    /// The prepared query behind an id.
    ///
    /// # Panics
    /// If `q` was not returned by this service's `add_query`/
    /// `add_prepared_query`.
    pub fn query(&self, q: QueryId) -> Arc<PreparedQuery> {
        self.queries.read().expect("query pool lock poisoned")[q.index()].clone()
    }

    /// The prepared document behind an id.
    ///
    /// # Panics
    /// If `d` was not returned by this service's `add_document`/
    /// `add_prepared_document`, or was removed via
    /// [`Service::remove_document`].
    pub fn document(&self, d: DocumentId) -> Arc<PreparedDocument> {
        self.try_document(d)
            .expect("document id unknown or removed")
    }

    /// The prepared document behind an id, or `None` if the id was never
    /// issued or the document was removed — the non-panicking lookup a
    /// front-end validating external ids should use.
    pub fn try_document(&self, d: DocumentId) -> Option<Arc<PreparedDocument>> {
        self.documents
            .read()
            .expect("document pool lock poisoned")
            .get(d.index())
            .and_then(|slot| slot.clone())
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.read().expect("query pool lock poisoned").len()
    }

    /// Number of registered documents still resolving (removed documents
    /// no longer count; their ids stay burned).
    pub fn num_documents(&self) -> usize {
        self.documents
            .read()
            .expect("document pool lock poisoned")
            .iter()
            .filter(|slot| slot.is_some())
            .count()
    }

    /// Binds a (query, document) pair for ad-hoc evaluation, building or
    /// fetching the pair's matrices.  The returned [`Evaluation`] owns
    /// `Arc`s into the pool, so it stays valid however long the caller
    /// keeps it (even across later evictions).
    pub fn evaluation(&self, q: QueryId, d: DocumentId) -> Evaluation {
        let query = self.query(q);
        let document = self.document(d);
        let (pre, lookup) = document.matrices_with_stats(&query);
        self.counters.commit(None, Some(&lookup));
        self.record_shard_stats(d, &lookup);
        self.sweep_if_removed(d, &document, &lookup);
        Evaluation::from_parts(query, document, pre)
    }

    /// Serves one request: fetches (or builds) the pair's matrices, answers
    /// the task, and reports what it cost.  Takes `&self` — see the module
    /// docs for the concurrency contract.
    ///
    /// # Errors
    /// [`EvalError::NondeterministicAutomaton`] for [`Task::Count`] /
    /// [`Task::Enumerate`] on a non-deterministic query (only possible with
    /// [`ServiceBuilder::determinize`]`(false)`),
    /// [`EvalError::DocumentRemoved`] when the document was removed — even
    /// concurrently, so a front-end racing [`Service::remove_document`]
    /// gets a structured error, never a panic — and any error of the
    /// model-checking algorithm (e.g. out-of-bounds tuples).
    ///
    /// # Panics
    /// If the request names a query id not issued by this service.
    pub fn run(&self, request: &TaskRequest) -> Result<TaskResponse, EvalError> {
        self.run_traced(request, None)
    }

    /// [`Service::run`] for a *sampled* request: spans for the cache
    /// lookup (with the matrix build and any per-shard executor fragments
    /// grafted beneath it on a miss) and the task execution are recorded
    /// into `tracer`.  `None` is exactly [`Service::run`]; the unsampled
    /// path allocates nothing here.
    pub fn run_traced(
        &self,
        request: &TaskRequest,
        tracer: Option<&Tracer>,
    ) -> Result<TaskResponse, EvalError> {
        let query = self.query(request.query);
        let document = self
            .try_document(request.doc)
            .ok_or(EvalError::DocumentRemoved)?;

        // Model checking runs on the original automaton × SLP
        // (Theorem 5.1(2)) and never reads the pair matrices — don't build
        // them (or evict a hot pair) for it.  Its stats report zero cache
        // traffic.
        if let Task::ModelCheck(tuple) = &request.task {
            self.counters.commit(Some(&request.task), None);
            let exec_from = tracer.map(|t| t.now_us());
            let start = Instant::now();
            let verdict = model_check::check(query.automaton(), document.original(), tuple)?;
            let task_time = start.elapsed();
            if let Some(t) = tracer {
                t.record(
                    "task_exec",
                    exec_from.unwrap_or(0),
                    task_time.as_micros() as u64,
                    None,
                    &[("kind", request.task.kind_name().to_string())],
                );
            }
            return Ok(TaskResponse {
                outcome: TaskOutcome::Checked(verdict),
                stats: RequestStats {
                    cache_hit: false,
                    matrix_build: Duration::ZERO,
                    matrix_bytes: 0,
                    task_time,
                    results: 0,
                },
                shard_stats: None,
            });
        }

        // Reject tasks whose duplicate-freeness needs determinism (Lemma
        // 8.8) *before* paying the matrix build — an erroring request must
        // not spend `O(size(S)·q³)` or evict a hot pair from the cache.
        if matches!(request.task, Task::Count | Task::Enumerate { .. }) && !query.is_deterministic()
        {
            self.counters.commit(Some(&request.task), None);
            return Err(EvalError::NondeterministicAutomaton);
        }

        let lookup_from = tracer.map(|t| t.now_us());
        let (pre, lookup) = document.matrices_traced(&query, tracer.map(|t| t.shard_trace()));
        if let Some(t) = tracer {
            self.trace_lookup(t, lookup_from.unwrap_or(0), &lookup);
        }
        self.counters.commit(Some(&request.task), Some(&lookup));
        self.record_shard_stats(request.doc, &lookup);
        self.sweep_if_removed(request.doc, &document, &lookup);

        let exec_from = tracer.map(|t| t.now_us());
        let start = Instant::now();
        let outcome = match &request.task {
            Task::NonEmptiness => TaskOutcome::NonEmpty(!pre.reachable_accepting().is_empty()),
            Task::ModelCheck(_) => unreachable!("handled above"),
            Task::Count => TaskOutcome::Count(count::count_from_matrices(&pre)),
            Task::Compute { limit } => {
                let mut tuples = compute::compute_from_matrices(&pre);
                if let Some(limit) = *limit {
                    tuples.truncate(limit);
                }
                TaskOutcome::Tuples(tuples)
            }
            Task::Enumerate { skip, limit } => {
                let iter = enumerate::Enumeration::from_matrices(&pre).skip(*skip);
                let tuples: Vec<SpanTuple> = match *limit {
                    Some(limit) => iter.take(limit).collect(),
                    None => iter.collect(),
                };
                TaskOutcome::Tuples(tuples)
            }
        };
        let task_time = start.elapsed();
        let results = outcome.tuples().map_or(0, |t| t.len() as u64);
        if let Some(t) = tracer {
            t.record(
                "task_exec",
                exec_from.unwrap_or(0),
                task_time.as_micros() as u64,
                None,
                &[
                    ("kind", request.task.kind_name().to_string()),
                    ("results", results.to_string()),
                ],
            );
        }
        Ok(TaskResponse {
            outcome,
            stats: RequestStats {
                cache_hit: lookup.hit,
                matrix_build: lookup.build_time,
                matrix_bytes: lookup.bytes,
                task_time,
                results,
            },
            shard_stats: lookup.shard_stats,
        })
    }

    /// Records the cache-lookup span of a sampled request, with the matrix
    /// build (and the sharded build's executor fragment, already in the
    /// request timebase) grafted beneath it on a miss.
    fn trace_lookup(&self, tracer: &Tracer, from_us: u64, lookup: &CacheLookup) {
        let dur = tracer.now_us().saturating_sub(from_us);
        let span = tracer.record(
            "cache_lookup",
            from_us,
            dur,
            None,
            &[
                ("hit", lookup.hit.to_string()),
                ("bytes", lookup.bytes.to_string()),
            ],
        );
        if !lookup.hit {
            let build_us = lookup.build_time.as_micros() as u64;
            let build = tracer.record(
                "matrix_build",
                (from_us + dur).saturating_sub(build_us),
                build_us,
                Some(span),
                &[],
            );
            if let Some(stats) = &lookup.shard_stats {
                tracer.graft(&stats.spans, Some(build), 0);
            }
        }
    }

    /// Serves a batch of requests, fanning out across a thread scope (with
    /// the `parallel` feature and unless disabled via
    /// [`ServiceBuilder::parallel`]).  Responses are in request order.
    ///
    /// Requests sharing a (query, document) pair deduplicate through the
    /// matrix cache.  Pairs that occur more than once in the batch have
    /// their matrices built once up front, so the duplicate requests fan
    /// out onto warm caches instead of racing redundant
    /// `O(size(S)·q³)` builds (the race would be benign, just wasteful);
    /// distinct cold pairs still build fully in parallel.
    pub fn run_batch(&self, requests: &[TaskRequest]) -> Vec<Result<TaskResponse, EvalError>> {
        #[cfg(feature = "parallel")]
        if self.config.parallel {
            let mut occurrences: std::collections::HashMap<(usize, usize), usize> =
                std::collections::HashMap::new();
            for request in requests {
                // Model checking never touches the matrices — see `run`.
                if !matches!(request.task, Task::ModelCheck(_)) {
                    *occurrences
                        .entry((request.query.index(), request.doc.index()))
                        .or_default() += 1;
                }
            }
            for (&(q, d), &n) in &occurrences {
                if n > 1 {
                    let query = self.query(QueryId(q));
                    // A document removed mid-batch skips the pre-build; the
                    // individual requests answer with the structured error.
                    let Some(document) = self.try_document(DocumentId(d)) else {
                        continue;
                    };
                    let (_, lookup) = document.matrices_with_stats(&query);
                    self.counters.commit(None, Some(&lookup));
                    self.record_shard_stats(DocumentId(d), &lookup);
                    self.sweep_if_removed(DocumentId(d), &document, &lookup);
                }
            }
            return rayon::par_map(requests, |request| self.run(request));
        }
        requests.iter().map(|request| self.run(request)).collect()
    }

    /// Serves one [`Task::Enumerate`] request *streamed*: results are
    /// handed to `emit` in pages of at most `page_size` tuples as the
    /// enumeration produces them, so a consumer (e.g. a network transport
    /// flushing each page) observes the paper's per-result delay rather
    /// than the total evaluation time.  `emit` returning `false` stops the
    /// enumeration early (a gone client must not keep paying for results).
    ///
    /// The returned response carries an **empty** tuple vector — the tuples
    /// went through `emit` — with `stats.results` counting what was
    /// actually streamed.  Any other task kind is delegated to
    /// [`Service::run`] unchanged, so callers can route every request
    /// through this entry point.
    ///
    /// # Errors / Panics
    /// As for [`Service::run`].
    pub fn run_paged(
        &self,
        request: &TaskRequest,
        page_size: usize,
        emit: &mut dyn FnMut(Vec<SpanTuple>) -> bool,
    ) -> Result<TaskResponse, EvalError> {
        self.run_paged_traced(request, page_size, emit, None)
    }

    /// [`Service::run_paged`] for a *sampled* request: like
    /// [`Service::run_traced`], plus one `enumerate_page` span per emitted
    /// page under the task-execution span — the per-page delay the paper's
    /// enumeration guarantee bounds, made visible.
    pub fn run_paged_traced(
        &self,
        request: &TaskRequest,
        page_size: usize,
        emit: &mut dyn FnMut(Vec<SpanTuple>) -> bool,
        tracer: Option<&Tracer>,
    ) -> Result<TaskResponse, EvalError> {
        let Task::Enumerate { skip, limit } = request.task else {
            return self.run_traced(request, tracer);
        };
        let query = self.query(request.query);
        let document = self
            .try_document(request.doc)
            .ok_or(EvalError::DocumentRemoved)?;
        if !query.is_deterministic() {
            self.counters.commit(Some(&request.task), None);
            return Err(EvalError::NondeterministicAutomaton);
        }
        let lookup_from = tracer.map(|t| t.now_us());
        let (pre, lookup) = document.matrices_traced(&query, tracer.map(|t| t.shard_trace()));
        if let Some(t) = tracer {
            self.trace_lookup(t, lookup_from.unwrap_or(0), &lookup);
        }
        self.counters.commit(Some(&request.task), Some(&lookup));
        self.record_shard_stats(request.doc, &lookup);
        self.sweep_if_removed(request.doc, &document, &lookup);

        let exec_from = tracer.map(|t| t.now_us());
        let start = Instant::now();
        let page_size = page_size.max(1);
        let cap = limit.unwrap_or(usize::MAX);
        let mut streamed: usize = 0;
        let mut page = Vec::with_capacity(page_size);
        let mut page_from = exec_from.unwrap_or(0);
        let mut pages = 0u64;
        let mut emit_page = |page: Vec<SpanTuple>, page_from: &mut u64, pages: &mut u64| {
            let tuples = page.len();
            let keep_going = emit(page);
            if let Some(t) = tracer {
                let now = t.now_us();
                t.record(
                    "enumerate_page",
                    *page_from,
                    now.saturating_sub(*page_from),
                    None,
                    &[("page", pages.to_string()), ("tuples", tuples.to_string())],
                );
                *page_from = now;
            }
            *pages += 1;
            keep_going
        };
        let mut iter = enumerate::Enumeration::from_matrices(&pre).skip(skip);
        while streamed < cap {
            let Some(tuple) = iter.next() else { break };
            page.push(tuple);
            streamed += 1;
            if page.len() == page_size
                && !emit_page(
                    std::mem::replace(&mut page, Vec::with_capacity(page_size)),
                    &mut page_from,
                    &mut pages,
                )
            {
                page.clear();
                break;
            }
        }
        if !page.is_empty() {
            emit_page(page, &mut page_from, &mut pages);
        }
        let task_time = start.elapsed();
        if let Some(t) = tracer {
            t.record(
                "task_exec",
                exec_from.unwrap_or(0),
                task_time.as_micros() as u64,
                None,
                &[
                    ("kind", request.task.kind_name().to_string()),
                    ("results", streamed.to_string()),
                    ("pages", pages.to_string()),
                ],
            );
        }
        Ok(TaskResponse {
            outcome: TaskOutcome::Tuples(Vec::new()),
            stats: RequestStats {
                cache_hit: lookup.hit,
                matrix_build: lookup.build_time,
                matrix_bytes: lookup.bytes,
                task_time,
                results: streamed as u64,
            },
            shard_stats: lookup.shard_stats,
        })
    }

    /// A snapshot of the aggregate counters (requests by task kind, cache
    /// traffic, plus the shared cache pool's eviction and residency
    /// totals).  Request-atomic under concurrency — see [`ServiceStats`].
    pub fn stats(&self) -> ServiceStats {
        let (requests, by_task, cache_hits, cache_misses) = self.counters.snapshot();
        let cache = self.cache.stats();
        ServiceStats {
            requests,
            by_task,
            cache_hits,
            cache_misses,
            evictions: cache.evictions,
            resident_bytes: cache.resident_bytes,
            resident_entries: cache.resident_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlpSpanner;
    use slp::compress::{Bisection, Compressor};
    use slp::families;
    use spanner::examples::figure_2_spanner;
    use spanner::regex;
    use std::collections::BTreeSet;

    fn assert_sync<T: Send + Sync>() {}

    #[test]
    fn service_is_send_and_sync() {
        assert_sync::<Service>();
    }

    #[test]
    fn all_tasks_match_the_facade() {
        let service = Service::new();
        let m = regex::compile(".*x{a+}y{b+}.*", b"ab").unwrap();
        let doc = Bisection.compress(b"aabbaabb");
        let q = service.add_query(&m);
        let d = service.add_document(&doc);
        let fresh = SlpSpanner::new(&m, &doc).unwrap();
        let run = |task: Task| {
            service
                .run(&TaskRequest {
                    query: q,
                    doc: d,
                    task,
                })
                .unwrap()
        };

        assert_eq!(
            run(Task::NonEmptiness).outcome.as_bool(),
            Some(fresh.is_non_empty())
        );
        assert_eq!(run(Task::Count).outcome.as_count(), Some(fresh.count()));
        let all: BTreeSet<SpanTuple> = fresh.compute().into_iter().collect();
        let computed = run(Task::Compute { limit: None });
        assert_eq!(
            computed
                .outcome
                .tuples()
                .unwrap()
                .iter()
                .cloned()
                .collect::<BTreeSet<_>>(),
            all
        );
        assert_eq!(computed.stats.results as usize, all.len());
        let tuple = fresh.compute().remove(0);
        assert_eq!(
            run(Task::ModelCheck(tuple)).outcome.as_bool(),
            Some(true),
            "computed tuples model-check"
        );
        let enumerated = run(Task::Enumerate {
            skip: 0,
            limit: None,
        });
        assert_eq!(
            enumerated
                .outcome
                .into_tuples()
                .unwrap()
                .into_iter()
                .collect::<BTreeSet<_>>(),
            all
        );
    }

    #[test]
    fn tenant_quotas_reject_with_structured_errors_and_release_on_remove() {
        let service = Service::new();
        let t = TenantId(4);
        assert!(service.create_tenant(
            t,
            TenantConfig {
                name: "acme".into(),
                max_docs: 2,
                max_corpus_bytes: 40,
                ..TenantConfig::default()
            }
        ));
        assert!(
            !service.create_tenant(t, TenantConfig::default()),
            "duplicate id"
        );

        let doc = families::power_word(b"ab", 8); // 16 bytes
        let a = service.add_document_for(t, &doc).unwrap();
        let _b = service.add_document_for(t, &doc).unwrap();
        assert_eq!(
            service.tenant_usage(t).unwrap(),
            TenantUsage {
                docs: 2,
                corpus_bytes: 32
            }
        );
        // Doc-count quota hits first.
        assert_eq!(
            service.add_document_for(t, &doc),
            Err(QuotaError::Docs { limit: 2, used: 2 })
        );
        // Removing releases both quota dimensions.
        assert!(service.remove_document(a));
        assert_eq!(
            service.tenant_usage(t).unwrap(),
            TenantUsage {
                docs: 1,
                corpus_bytes: 16
            }
        );
        // Now the byte quota rejects a too-large document (16 + 32 > 40).
        let big = families::power_word(b"ab", 16); // 32 bytes
        assert_eq!(
            service.add_document_for(t, &big),
            Err(QuotaError::CorpusBytes {
                limit: 40,
                used: 16,
                requested: 32
            })
        );
        // Unknown tenants are a structured error too.
        assert_eq!(
            service.add_document_for(TenantId(99), &doc),
            Err(QuotaError::UnknownTenant)
        );
        // The default tenant is unlimited and untouched by all of this.
        let d = service.add_document(&doc);
        assert_eq!(service.document_tenant(d), Some(TenantId::DEFAULT));
        assert_eq!(service.tenant_usage(TenantId::DEFAULT).unwrap().docs, 1);
    }

    #[test]
    fn auto_probe_counter_tracks_probe_splits_only() {
        let service = Service::new();
        // A recorded-k registration must never probe.
        let doc = families::power_word(b"ab", 4096);
        service.add_document_sharded(&doc, 4);
        service.add_document(&doc);
        assert_eq!(service.auto_probe_count(), 0);
        // The auto path may or may not probe depending on the host's core
        // count; on multi-core hosts a large block document probes once.
        let blocks: Vec<u8> = (0..64u32)
            .flat_map(|i| {
                let b = [b'a', b'b', b'c', b'd'][(i % 4) as usize];
                std::iter::repeat_n(b, 64)
            })
            .collect();
        let block_doc = slp::compress::Compressor::compress(&Bisection, &blocks);
        let before = service.auto_probe_count();
        service.add_document_auto(&block_doc);
        let after = service.auto_probe_count();
        assert!(after == before || after == before + 1);
    }

    #[test]
    fn enumerate_windows_partition_the_relation() {
        let service = Service::new();
        let q = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        let d = service.add_document(&families::power_word(b"ab", 100));
        let mut seen = Vec::new();
        for window in 0..4 {
            let response = service
                .run(&TaskRequest {
                    query: q,
                    doc: d,
                    task: Task::Enumerate {
                        skip: window * 30,
                        limit: Some(30),
                    },
                })
                .unwrap();
            seen.extend(response.outcome.into_tuples().unwrap());
        }
        // 100 results in windows of 30: 30 + 30 + 30 + 10.
        assert_eq!(seen.len(), 100);
        assert_eq!(seen.iter().collect::<BTreeSet<_>>().len(), 100);
    }

    #[test]
    fn compute_limit_trims_the_response() {
        let service = Service::new();
        let q = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        let d = service.add_document(&families::power_word(b"ab", 64));
        let response = service
            .run(&TaskRequest {
                query: q,
                doc: d,
                task: Task::Compute { limit: Some(5) },
            })
            .unwrap();
        assert_eq!(response.stats.results, 5);
        assert_eq!(response.outcome.tuples().unwrap().len(), 5);
    }

    #[test]
    fn request_stats_track_cache_traffic() {
        let service = Service::new();
        let q = service.add_query(&figure_2_spanner());
        let d = service.add_document(&Bisection.compress(b"aabccaabaa"));
        let request = TaskRequest {
            query: q,
            doc: d,
            task: Task::NonEmptiness,
        };
        let first = service.run(&request).unwrap();
        assert!(!first.stats.cache_hit);
        assert!(first.stats.matrix_bytes > 0);
        let second = service.run(&request).unwrap();
        assert!(second.stats.cache_hit);
        assert_eq!(second.stats.matrix_build, Duration::ZERO);
        let stats = service.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(stats.resident_bytes, first.stats.matrix_bytes);
    }

    #[test]
    fn stats_break_requests_down_by_task_kind() {
        let service = Service::new();
        let q = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        let d = service.add_document(&families::power_word(b"ab", 32));
        let run = |task: Task| {
            service
                .run(&TaskRequest {
                    query: q,
                    doc: d,
                    task,
                })
                .unwrap()
        };
        run(Task::NonEmptiness);
        run(Task::Count);
        run(Task::Count);
        let tuple = run(Task::Compute { limit: Some(1) })
            .outcome
            .into_tuples()
            .unwrap()
            .remove(0);
        run(Task::ModelCheck(tuple));
        run(Task::Enumerate {
            skip: 0,
            limit: Some(3),
        });
        let stats = service.stats();
        assert_eq!(
            stats.by_task,
            TaskKindCounts {
                non_emptiness: 1,
                model_check: 1,
                count: 2,
                compute: 1,
                enumerate: 1,
            }
        );
        assert_eq!(stats.requests, stats.by_task.total());
    }

    #[test]
    fn stats_snapshot_is_request_atomic_under_run_batch() {
        // Hammer stats() while a batch fans out; every snapshot must be
        // internally consistent: the per-kind counts always sum to the
        // request total (a half-committed request would break this).
        let service = Arc::new(Service::new());
        let q = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        let d = service.add_document(&families::power_word(b"ab", 256));
        let requests: Vec<TaskRequest> = (0..64)
            .map(|i| TaskRequest {
                query: q,
                doc: d,
                task: if i % 2 == 0 {
                    Task::Count
                } else {
                    Task::NonEmptiness
                },
            })
            .collect();
        std::thread::scope(|scope| {
            let svc = service.clone();
            let batch = scope.spawn(move || svc.run_batch(&requests));
            for _ in 0..200 {
                let stats = service.stats();
                assert_eq!(
                    stats.requests,
                    stats.by_task.total(),
                    "snapshot caught a half-committed request"
                );
            }
            for response in batch.join().unwrap() {
                response.unwrap();
            }
        });
        let stats = service.stats();
        assert_eq!(stats.requests, 64);
        assert_eq!(stats.by_task.count, 32);
        assert_eq!(stats.by_task.non_emptiness, 32);
    }

    #[test]
    fn run_paged_streams_the_same_tuples_as_run() {
        let service = Service::new();
        let q = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        let d = service.add_document(&families::power_word(b"ab", 100));
        let request = TaskRequest {
            query: q,
            doc: d,
            task: Task::Enumerate {
                skip: 5,
                limit: Some(50),
            },
        };
        let direct = service.run(&request).unwrap();
        let mut pages = 0;
        let mut streamed = Vec::new();
        let response = service
            .run_paged(&request, 8, &mut |page| {
                assert!(page.len() <= 8);
                pages += 1;
                streamed.extend(page);
                true
            })
            .unwrap();
        assert_eq!(streamed, direct.outcome.into_tuples().unwrap());
        assert_eq!(pages, 7, "50 results in pages of 8: 6 full + 1 short");
        assert_eq!(response.stats.results, 50);
        assert!(response.outcome.tuples().unwrap().is_empty());
        // Early stop: the consumer cancels after the first page.
        let mut first_pages = 0;
        let cancelled = service
            .run_paged(&request, 8, &mut |_| {
                first_pages += 1;
                false
            })
            .unwrap();
        assert_eq!(first_pages, 1);
        assert_eq!(cancelled.stats.results, 8);
        // Non-enumerate tasks delegate to run().
        let count = service
            .run_paged(
                &TaskRequest {
                    query: q,
                    doc: d,
                    task: Task::Count,
                },
                8,
                &mut |_| panic!("count must not stream"),
            )
            .unwrap();
        assert_eq!(count.outcome.as_count(), Some(100));
    }

    #[test]
    fn add_document_auto_matches_the_monolithic_results() {
        let service = Service::new();
        let q = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        // A power family is exponentially shared: auto keeps it monolithic
        // on any core count.
        let power = families::power_word(b"ab", 1 << 16);
        assert_eq!(service.auto_shard_count(&power, 16), 1);
        let d_auto = service.add_document_auto(&power);
        assert!(!service.document(d_auto).is_sharded());
        let response = service
            .run(&TaskRequest {
                query: q,
                doc: d_auto,
                task: Task::Count,
            })
            .unwrap();
        assert_eq!(response.outcome.as_count(), Some(1 << 16));
        // A low-repetitiveness block document partitions: with enough cores
        // the auto policy shards it, and the results are unchanged.
        let mut state = 0x9E37_79B9u64;
        let block: Vec<u8> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b'a' + ((state >> 33) % 2) as u8
            })
            .collect();
        let slp = slp::NormalFormSlp::from_document(&block).unwrap();
        assert!(service.auto_shard_count(&slp, 16) > 1);
        let d_block = service.add_document_auto(&slp);
        let reference =
            SlpSpanner::new(&regex::compile(".*x{ab}.*", b"ab").unwrap(), &slp).unwrap();
        let counted = service
            .run(&TaskRequest {
                query: q,
                doc: d_block,
                task: Task::Count,
            })
            .unwrap();
        assert_eq!(counted.outcome.as_count(), Some(reference.count()));
    }

    #[test]
    fn run_batch_matches_run_in_request_order() {
        let service = Service::new();
        let q1 = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        let q2 = service.add_query(&regex::compile(".*x{a+}y{b+}.*", b"ab").unwrap());
        let docs = [
            Bisection.compress(b"aabbaabbab"),
            families::power_word(b"ab", 64),
        ];
        let dids: Vec<DocumentId> = docs.iter().map(|d| service.add_document(d)).collect();
        let mut requests = Vec::new();
        for &q in &[q1, q2] {
            for &d in &dids {
                requests.push(TaskRequest {
                    query: q,
                    doc: d,
                    task: Task::Count,
                });
                requests.push(TaskRequest {
                    query: q,
                    doc: d,
                    task: Task::Compute { limit: None },
                });
            }
        }
        let batch = service.run_batch(&requests);
        assert_eq!(batch.len(), requests.len());
        for (request, response) in requests.iter().zip(batch) {
            let serial = service.run(request).unwrap();
            assert_eq!(response.unwrap().outcome, serial.outcome);
        }
    }

    #[test]
    fn nondeterministic_policy_gates_the_duplicate_free_tasks() {
        let service = Service::builder().determinize(false).build();
        let nondet = regex::compile(".*x{a.*}.*", b"ab").unwrap();
        assert!(!nondet.is_deterministic());
        let q = service.add_query(&nondet);
        let d = service.add_document(&Bisection.compress(b"abab"));
        assert!(!service.query(q).is_deterministic());
        let err = service
            .run(&TaskRequest {
                query: q,
                doc: d,
                task: Task::Count,
            })
            .unwrap_err();
        assert_eq!(err, EvalError::NondeterministicAutomaton);
        assert_eq!(
            service.document(d).cached_query_count(),
            0,
            "a rejected request must not pay the matrix build"
        );
        // Non-emptiness and compute still work (duplicates eliminated by ⪯).
        let compute = service
            .run(&TaskRequest {
                query: q,
                doc: d,
                task: Task::Compute { limit: None },
            })
            .unwrap();
        let det = SlpSpanner::new(&nondet, &Bisection.compress(b"abab")).unwrap();
        assert_eq!(
            compute.stats.results as usize,
            det.compute().len(),
            "compute is duplicate-free even without determinisation"
        );
        // The ad-hoc Evaluation path must not silently double-count either:
        // count() falls back to the duplicate-free compute pass.
        let eval = service.evaluation(q, d);
        assert_eq!(eval.count(), det.count());
    }

    #[test]
    fn model_check_requests_skip_the_matrix_cache() {
        let service = Service::new();
        let q = service.add_query(&figure_2_spanner());
        let d = service.add_document(&Bisection.compress(b"aabccaabaa"));
        let tuple = {
            let eval = service.evaluation(q, d);
            eval.compute().remove(0)
        };
        service.document(d).clear_cache();
        let response = service
            .run(&TaskRequest {
                query: q,
                doc: d,
                task: Task::ModelCheck(tuple),
            })
            .unwrap();
        assert_eq!(response.outcome.as_bool(), Some(true));
        // No matrices were built or reported for the check.
        assert!(!response.stats.cache_hit);
        assert_eq!(response.stats.matrix_bytes, 0);
        assert_eq!(
            service.document(d).cached_query_count(),
            0,
            "model checking must not populate the cache"
        );
    }

    #[test]
    fn run_batch_prebuilds_duplicated_cold_pairs_once() {
        let service = Service::new();
        let q = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        let d = service.add_document(&families::power_word(b"ab", 64));
        let requests = vec![
            TaskRequest {
                query: q,
                doc: d,
                task: Task::Count,
            };
            6
        ];
        let batch = service.run_batch(&requests);
        for response in batch {
            assert_eq!(response.unwrap().outcome.as_count(), Some(64));
        }
        // One build total: the pre-build pass, which every request then hit
        // (with the `parallel` feature the duplicate requests would
        // otherwise race redundant builds; serially this holds trivially).
        assert_eq!(service.document(d).cache_stats().misses, 1);
    }

    #[test]
    fn re_registering_a_cloned_document_leaves_the_source_service_warm() {
        let source = Service::new();
        let q = source.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        let x = source.add_document(&families::power_word(b"ab", 64));
        let y = source.add_document(&families::power_word(b"ab", 32));
        for &d in &[x, y] {
            source
                .run(&TaskRequest {
                    query: q,
                    doc: d,
                    task: Task::Count,
                })
                .unwrap();
        }
        let warm_bytes = source.stats().resident_bytes;

        // Clone document x out of the source service and register it in a
        // second one: the source pool — including document y — must stay
        // fully resident, and the clone's matrices follow it for free.
        let second = Service::new();
        let x2 = second.add_prepared_document((*source.document(x)).clone());
        assert_eq!(source.stats().resident_bytes, warm_bytes);
        assert_eq!(source.document(x).cached_query_count(), 1);
        assert_eq!(source.document(y).cached_query_count(), 1);
        let q2 = second.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        assert_eq!(
            second.document(x2).cached_query_count(),
            1,
            "the already built matrices followed the clone"
        );
        // (q2 is a fresh token, so its first request still builds.)
        let response = second
            .run(&TaskRequest {
                query: q2,
                doc: x2,
                task: Task::Count,
            })
            .unwrap();
        assert_eq!(response.outcome.as_count(), Some(64));
    }

    #[test]
    fn remove_document_burns_the_id_and_clears_only_its_matrices() {
        let service = Service::new();
        let q = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        let d1 = service.add_document(&families::power_word(b"ab", 32));
        let d2 = service.add_document(&families::power_word(b"ab", 64));
        for &d in &[d1, d2] {
            service
                .run(&TaskRequest {
                    query: q,
                    doc: d,
                    task: Task::Count,
                })
                .unwrap();
        }
        assert_eq!(service.stats().resident_entries, 2);
        assert_eq!(service.num_documents(), 2);

        assert!(service.remove_document(d1));
        assert!(!service.remove_document(d1), "removal is idempotent-false");
        assert!(service.try_document(d1).is_none());
        assert!(service.try_document(d2).is_some());
        assert_eq!(service.num_documents(), 1);
        assert_eq!(
            service.stats().resident_entries,
            1,
            "only the removed document's matrices were invalidated"
        );

        // The survivor stays warm; new registrations get fresh ids.
        let warm = service
            .run(&TaskRequest {
                query: q,
                doc: d2,
                task: Task::Count,
            })
            .unwrap();
        assert!(warm.stats.cache_hit);
        let d3 = service.add_document(&families::power_word(b"ab", 16));
        assert_ne!(d3.index(), d1.index(), "burned ids are not reissued");

        // Requests racing the removal draw a structured error, not a
        // panic — a front-end validating ids before dispatch can still
        // lose the race and must survive it.
        for task in [Task::Count, Task::ModelCheck(spanner::SpanTuple::empty(1))] {
            assert_eq!(
                service
                    .run(&TaskRequest {
                        query: q,
                        doc: d1,
                        task,
                    })
                    .unwrap_err(),
                EvalError::DocumentRemoved
            );
        }
        assert_eq!(
            service
                .run_paged(
                    &TaskRequest {
                        query: q,
                        doc: d1,
                        task: Task::Enumerate {
                            skip: 0,
                            limit: None,
                        },
                    },
                    8,
                    &mut |_| panic!("removed documents must not stream"),
                )
                .unwrap_err(),
            EvalError::DocumentRemoved
        );
    }

    #[test]
    fn cache_budget_bounds_resident_bytes() {
        let probe = {
            let service = Service::new();
            let q = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
            let d = service.add_document(&families::power_word(b"ab", 64));
            service
                .run(&TaskRequest {
                    query: q,
                    doc: d,
                    task: Task::NonEmptiness,
                })
                .unwrap()
                .stats
                .matrix_bytes
        };
        // Budget for roughly two (similar) matrix sets per document.
        let service = Service::builder().cache_budget(probe * 5 / 2).build();
        let queries = [
            ".*x{ab}.*",
            ".*x{a+}y{b+}.*",
            "(a|b)*x{abb?}(a|b)*",
            ".*x{ba}.*",
        ];
        let qids: Vec<QueryId> = queries
            .iter()
            .map(|p| service.add_query(&regex::compile(p, b"ab").unwrap()))
            .collect();
        let d = service.add_document(&families::power_word(b"ab", 64));
        for &q in &qids {
            service
                .run(&TaskRequest {
                    query: q,
                    doc: d,
                    task: Task::Count,
                })
                .unwrap();
            assert!(service.stats().resident_bytes <= probe * 5 / 2);
        }
        let stats = service.stats();
        assert!(stats.evictions > 0, "four queries cannot all stay resident");
        assert_eq!(service.document(d).cache_budget(), Some(probe * 5 / 2));
    }
}
