//! Error type of the evaluation crate.

use std::fmt;

/// Errors raised by the compressed-evaluation algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The enumeration algorithm (Theorem 8.10) requires a deterministic
    /// automaton; call `SpannerAutomaton::determinized()` first or use the
    /// duplicate-tolerant NFA mode explicitly.
    NondeterministicAutomaton,
    /// The span-tuple refers to positions outside the document.
    TupleOutOfBounds {
        /// The offending position.
        position: u64,
        /// The document length.
        document_len: u64,
    },
    /// The request names a service document that was removed
    /// (`Service::remove_document`) — possibly concurrently with the
    /// request; the id is burned and will not be reissued.
    DocumentRemoved,
    /// An error bubbled up from the spanner formalism layer.
    Spanner(spanner::SpannerError),
    /// An error bubbled up from the SLP layer.
    Slp(slp::SlpError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NondeterministicAutomaton => write!(
                f,
                "the enumeration algorithm requires a deterministic spanner automaton"
            ),
            EvalError::TupleOutOfBounds {
                position,
                document_len,
            } => write!(
                f,
                "span-tuple position {position} is outside the document of length {document_len}"
            ),
            EvalError::DocumentRemoved => {
                write!(f, "the document was removed from the service")
            }
            EvalError::Spanner(e) => write!(f, "{e}"),
            EvalError::Slp(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<spanner::SpannerError> for EvalError {
    fn from(e: spanner::SpannerError) -> Self {
        EvalError::Spanner(e)
    }
}

impl From<slp::SlpError> for EvalError {
    fn from(e: slp::SlpError) -> Self {
        EvalError::Slp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EvalError = slp::SlpError::EmptyDocument.into();
        assert!(e.to_string().contains("empty document"));
        let e: EvalError = spanner::SpannerError::TooManyVariables { requested: 40 }.into();
        assert!(e.to_string().contains("40"));
        assert!(EvalError::NondeterministicAutomaton
            .to_string()
            .contains("deterministic"));
    }
}
