//! The service layer: one shared, memory-bounded `Service` answering
//! task-oriented requests for many queries over many documents — from many
//! threads at once, since `run`/`run_batch` take `&self`.
//!
//! Run with `cargo run --release --example service_tasks`.

use slp_spanner::prelude::*;
use slp_spanner::slp::families;
use slp_spanner::workloads::documents::{repetitive_log, LogOptions};
use slp_spanner::workloads::queries;

fn main() {
    // A service with one 32 MiB matrix budget shared by *all* documents:
    // matrices for the hottest (query, document) pairs stay resident, cold
    // ones are evicted LRU-first (one eviction clock across the whole
    // corpus) and transparently rebuilt when they come back.
    let service = Service::builder().cache_budget(32 << 20).build();

    // Pool three documents: a generated log, the same log *sharded* into 4
    // balanced sub-grammars (its matrix builds scatter one pass per shard
    // and gather at the root), and one synthetic giant.
    let logs: Vec<NormalFormSlp<u8>> = [7, 8]
        .iter()
        .map(|&seed| {
            RePair::default().compress(&repetitive_log(&LogOptions {
                lines: 5_000,
                templates: 8,
                seed,
            }))
        })
        .collect();
    let mut docs: Vec<DocumentId> = vec![
        service.add_document(&logs[0]),
        service.add_document_sharded(&logs[1], 4),
    ];
    docs.push(service.add_document(&families::power_word(
        b"ERROR in pay: code=500 retry\n",
        1_000_000,
    )));

    // Pool two extraction queries.
    let q_kv = service.add_query(&queries::key_value().automaton);
    let q_err = service.add_query(&queries::log_error_value().automaton);

    // Phase 1: a batch of counting requests over the full cross-product.
    // Counting never materialises a single tuple.
    let count_requests: Vec<TaskRequest> = [q_kv, q_err]
        .iter()
        .flat_map(|&query| {
            docs.iter().map(move |&doc| TaskRequest {
                query,
                doc,
                task: Task::Count,
            })
        })
        .collect();
    println!("counting over the query × document grid:");
    for (request, response) in count_requests
        .iter()
        .zip(service.run_batch(&count_requests))
    {
        let response = response.expect("pooled counting cannot fail");
        let sharding = match &response.shard_stats {
            Some(stats) => format!(
                ", {} shards, critical path {:?}",
                stats.k(),
                stats.critical_path()
            ),
            None => String::new(),
        };
        println!(
            "  query {:>2} × doc {:>2}: {:>9} results  [{}, matrices {:>7} bytes, build {:?}{}]",
            request.query.index(),
            request.doc.index(),
            response.outcome.as_count().unwrap(),
            if response.stats.cache_hit {
                "cache hit "
            } else {
                "cache miss"
            },
            response.stats.matrix_bytes,
            response.stats.matrix_build,
            sharding,
        );
    }

    // Phase 2: page through one hot pair with enumeration windows — cost is
    // proportional to the window, not to the total result count.
    println!("\npaging the error extractions of document 0:");
    for page in 0..3 {
        let response = service
            .run(&TaskRequest {
                query: q_err,
                doc: docs[0],
                task: Task::Enumerate {
                    skip: page * 4,
                    limit: Some(4),
                },
            })
            .expect("enumeration succeeds");
        println!(
            "  page {page}: {} tuples in {:?} (cache hit: {})",
            response.stats.results, response.stats.task_time, response.stats.cache_hit,
        );
    }

    // Phase 3: the same service, shared across threads with no extra
    // locking — `run` takes `&self`.
    let hits: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|worker| {
                let service = &service;
                let docs = &docs;
                scope.spawn(move || {
                    let mut hits = 0;
                    for round in 0..8 {
                        let response = service
                            .run(&TaskRequest {
                                query: if (worker + round) % 2 == 0 {
                                    q_kv
                                } else {
                                    q_err
                                },
                                doc: docs[(worker + round) % docs.len()],
                                task: Task::NonEmptiness,
                            })
                            .expect("non-emptiness cannot fail");
                        hits += response.stats.cache_hit as usize;
                    }
                    hits
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    println!("\n4 threads × 8 requests: {hits}/32 were cache hits");

    let stats = service.stats();
    println!(
        "service totals: {} requests, {} hits / {} misses, {} evictions, {} bytes resident",
        stats.requests, stats.cache_hits, stats.cache_misses, stats.evictions, stats.resident_bytes,
    );
}
