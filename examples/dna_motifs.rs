//! Motif extraction from a DNA-like sequence with long approximate repeats —
//! the second classic source of highly compressible text.  Compares the
//! compressed evaluation against the decompress-and-solve baseline on the
//! same query.
//!
//! Run with `cargo run --release --example dna_motifs`.

use slp_spanner::baseline;
use slp_spanner::prelude::*;
use slp_spanner::slp::SlpStats;
use slp_spanner::workloads::documents::dna_with_repeats;
use slp_spanner::workloads::queries;
use std::time::Instant;

fn main() {
    // A genome-like document: a 1 kbp segment repeated 100 times with 0.1%
    // point mutations (100 kbp total; kept moderate because the
    // decompress-and-solve comparison below pays O(d) *per result*).
    let plain = dna_with_repeats(1_000, 100, 0.001, 13);
    let slp = RePair::default().compress(&plain);
    let stats = SlpStats::of(&slp);
    println!("sequence length      : {} bp", plain.len());
    println!(
        "compressed SLP       : size {} / ratio {:.5}",
        stats.size, stats.ratio
    );

    let query = queries::dna_tata();
    println!("query                : {}", query.pattern);

    // Compressed evaluation.
    let start = Instant::now();
    let spanner = SlpSpanner::new(&query.automaton, &slp).expect("query compiles");
    let compressed_count = spanner.enumerate().count();
    let compressed_time = start.elapsed();

    // Decompress-and-solve baseline.
    let start = Instant::now();
    let baseline_count = baseline::compute_slp(&query.automaton, &slp).len();
    let baseline_time = start.elapsed();

    assert_eq!(
        compressed_count, baseline_count,
        "both evaluators must agree"
    );
    println!("TATA-box motifs found: {compressed_count}");
    println!(
        "compressed evaluation: {:.1} ms,  decompress-and-solve: {:.1} ms",
        compressed_time.as_secs_f64() * 1e3,
        baseline_time.as_secs_f64() * 1e3
    );

    // Show a couple of matches with one-sided context.
    let x = query.automaton.variables().get("x").unwrap();
    for tuple in spanner.enumerate().take(3) {
        let span = tuple.get(x).unwrap();
        let context_end = ((span.end + 5) as usize - 1).min(plain.len());
        println!(
            "  motif {} …{}",
            span,
            String::from_utf8_lossy(&plain[(span.start - 1) as usize..context_end])
        );
    }
}
