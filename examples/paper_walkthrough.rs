//! A guided tour through the paper's running examples, printing the exact
//! objects that appear in its figures: the SLPs of Examples 4.1/4.2
//! (Figure 3), the spanner DFA of Figure 2, the subword-marked words of
//! Example 3.2, and the result set whose `(M,S₀)`-tree is shown in Figure 4
//! (Example 8.2).
//!
//! Run with `cargo run --release --example paper_walkthrough`.

use slp_spanner::eval::SlpSpanner;
use slp_spanner::slp::examples::{example_4_1, example_4_2, names_4_2};
use slp_spanner::slp::{NfRule, NonTerminal};
use slp_spanner::spanner::examples::figure_2_spanner;
use slp_spanner::spanner::{MarkedWord, Marker, PartialMarkerSet, Variable};

fn main() {
    // ---- Example 4.1: a general SLP of size 16 for a document of size 25.
    let s41 = example_4_1();
    println!("Example 4.1");
    println!("  D(S)    = {}", String::from_utf8_lossy(&s41.derive()));
    println!(
        "  size(S) = {}, |D(S)| = {}",
        s41.size(),
        s41.document_len()
    );

    // ---- Example 4.2 / Figure 3: the normal-form SLP for aabccaabaa.
    let s42 = example_4_2();
    println!("\nExample 4.2 (Figure 3)");
    println!("  D(S)    = {}", String::from_utf8_lossy(&s42.derive()));
    let names = ["T_a", "T_b", "T_c", "E", "D", "C", "B", "A", "S0"];
    for (i, name) in names.iter().enumerate() {
        let nt = NonTerminal(i as u32);
        let rule = match s42.rule(nt) {
            NfRule::Leaf(c) => format!("{}", c as char),
            NfRule::Pair(l, r) => format!("{} {}", names[l.index()], names[r.index()]),
        };
        println!(
            "  {name:3} -> {rule:8}   D({name}) = {}",
            String::from_utf8_lossy(&s42.derive_from(nt))
        );
    }
    println!("  depth(S) = {}", s42.depth());

    // ---- Example 3.2: subword-marked words and the e(·)/p(·) translation.
    println!("\nExample 3.2");
    let markers = PartialMarkerSet::from_marker_positions(vec![
        (1, Marker::Open(Variable(0))),
        (3, Marker::Close(Variable(0))),
        (3, Marker::Open(Variable(1))),
        (7, Marker::Close(Variable(1))),
        (3, Marker::Open(Variable(2))),
        (5, Marker::Close(Variable(2))),
    ]);
    let w = MarkedWord::from_document_and_markers(b"abbcabac", &markers).unwrap();
    println!("  w    = {w}");
    println!("  e(w) = {}", String::from_utf8_lossy(w.document()));
    println!("  p(w) = {}", w.markers());

    // ---- Figure 2: the spanner DFA.
    let m = figure_2_spanner();
    println!("\nFigure 2 (spanner DFA, states here are paper states minus one)");
    println!(
        "  {} states, {} transitions, accepting: {:?}",
        m.num_states(),
        m.num_transitions(),
        m.nfa().accepting_states()
    );

    // ---- Example 8.2 / Figure 4: evaluating Figure 2 on Example 4.2.
    println!("\nExample 8.2 / Figure 4: ⟦M⟧(aabccaabaa)");
    let spanner = SlpSpanner::new(&m, &s42).expect("example inputs are compatible");
    let results = spanner.compute();
    println!("  {} result tuples:", results.len());
    for t in &results {
        println!("    {}", t.display(m.variables()));
    }
    // The tuple whose (M,S0)-tree is depicted in Figure 4:
    println!(
        "  Figure 4's tree yields the tuple (x ↦ ⊥, y ↦ [4, 6⟩); the names refer to {}",
        names[names_4_2::S0.index()]
    );
}
