//! Information extraction from a compressed server log — the motivating
//! scenario of the paper's introduction: the document is huge but highly
//! repetitive, so it is stored compressed, and the spanner is evaluated
//! without ever materialising the full text.
//!
//! Run with `cargo run --release --example log_extraction`.

use slp_spanner::prelude::*;
use slp_spanner::slp::SlpStats;
use slp_spanner::workloads::documents::{repetitive_log, LogOptions};
use slp_spanner::workloads::queries;

fn main() {
    // Generate a synthetic log and compress it.
    let plain = repetitive_log(&LogOptions {
        lines: 50_000,
        templates: 8,
        seed: 2026,
    });
    let slp = RePair::default().compress(&plain);
    let stats = SlpStats::of(&slp);
    println!(
        "log size             : {} bytes ({} lines)",
        plain.len(),
        50_000
    );
    println!(
        "compressed SLP       : size {} / depth {} / ratio {:.5}",
        stats.size, stats.depth, stats.ratio
    );

    // Query 1: key=value extraction.
    let kv = queries::key_value();
    let spanner = SlpSpanner::new(&kv.automaton, &slp).expect("query compiles");
    let k = kv.automaton.variables().get("k").unwrap();
    let v = kv.automaton.variables().get("v").unwrap();
    println!("\n[{}]  pattern: {}", kv.name, kv.pattern);
    println!("non-empty: {}", spanner.is_non_empty());
    let mut counts = std::collections::BTreeMap::new();
    for tuple in spanner.enumerate().take(50_000) {
        let key = String::from_utf8_lossy(
            tuple
                .get(k)
                .unwrap()
                .value(&plain)
                .expect("span within document"),
        )
        .into_owned();
        *counts.entry(key).or_insert(0usize) += 1;
        let _ = tuple.get(v);
    }
    println!("key frequencies over the first 50k matches:");
    for (key, count) in counts {
        println!("  {key:10} {count}");
    }

    // Query 2: the numeric field of ERROR lines.
    let err = queries::log_error_value();
    let spanner = SlpSpanner::new(&err.automaton, &slp).expect("query compiles");
    println!("\n[{}]  pattern: {}", err.name, err.pattern);
    println!("non-empty: {}", spanner.is_non_empty());
    let x = err.automaton.variables().get("x").unwrap();
    let sample: Vec<String> = spanner
        .enumerate()
        .take(5)
        .map(|t| String::from_utf8_lossy(t.get(x).unwrap().value(&plain).unwrap()).into_owned())
        .collect();
    println!("first extracted ERROR values: {sample:?}");
}
