//! Compares the grammar compressors on documents of different shapes and
//! shows how SLP size and depth — the two parameters all of the paper's
//! bounds depend on — vary with the input and the compressor.
//!
//! Run with `cargo run --release --example compression_explorer`.

use slp_spanner::slp::balance::{is_balanced, rebalance};
use slp_spanner::slp::compress::{Bisection, Chain, Compressor, Lz78, RePair};
use slp_spanner::slp::SlpStats;
use slp_spanner::workloads::documents::{
    dna_with_repeats, repetitive_log, tunable_repetitiveness, LogOptions,
};

fn main() {
    let documents: Vec<(&str, Vec<u8>)> = vec![
        ("unary a^65536", vec![b'a'; 65_536]),
        (
            "server log (2k lines)",
            repetitive_log(&LogOptions {
                lines: 2_000,
                templates: 8,
                seed: 5,
            }),
        ),
        (
            "DNA, 64 repeats of 1kbp",
            dna_with_repeats(1_000, 64, 0.002, 9),
        ),
        (
            "tunable novelty=0.01",
            tunable_repetitiveness(1 << 16, 32, 0.01, 1),
        ),
        (
            "tunable novelty=1.0 (incompressible)",
            tunable_repetitiveness(1 << 16, 32, 1.0, 1),
        ),
    ];
    let compressors: Vec<Box<dyn Compressor>> = vec![
        Box::new(Bisection),
        Box::new(RePair::default()),
        Box::new(Lz78),
        Box::new(Chain),
    ];

    println!(
        "{:<38} {:<10} {:>10} {:>8} {:>9}  balanced?",
        "document", "compressor", "size(S)", "depth", "ratio"
    );
    for (name, doc) in &documents {
        for compressor in &compressors {
            let slp = compressor.compress(doc);
            let stats = SlpStats::of(&slp);
            println!(
                "{:<38} {:<10} {:>10} {:>8} {:>9.5}  {}",
                name,
                compressor.name(),
                stats.size,
                stats.depth,
                stats.ratio,
                is_balanced(&slp, 1.5)
            );
        }
    }

    // Rebalancing demonstration: the chain grammar is the worst case for the
    // enumeration delay bound O(depth(S)·|X|); the AVL join pass repairs it.
    let doc = tunable_repetitiveness(1 << 14, 32, 0.05, 3);
    let chain = Chain.compress(&doc);
    let balanced = rebalance(&chain);
    println!(
        "\nrebalancing a chain SLP of depth {} for d = {}: new depth {}, size {} -> {}",
        chain.depth(),
        doc.len(),
        balanced.depth(),
        chain.size(),
        balanced.size()
    );
    assert_eq!(balanced.derive(), doc);
}
