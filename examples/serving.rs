//! Serving demo: boot the TCP front-end on a loopback port, drive it with
//! the bundled client, and watch the pieces the transport adds on top of
//! the `Service` layer — wire-level task requests, streamed enumeration
//! pages, structured backpressure, and a graceful drain.
//!
//! Run with `cargo run --release --example serving`.

use spanner_server::{retry_busy, Client, Server, ServerConfig};
use spanner_slp_core::Service;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A server over a fresh service; page_size kept small so the streaming
    // below is visible.
    let server = Server::bind(
        "127.0.0.1:0",
        Service::new(),
        ServerConfig {
            page_size: 32,
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!("server listening on {addr}");

    // Register a query and two documents over the wire: a log-like text and
    // the same text with an auto-tuned shard count (k = 0; tiny documents
    // stay monolithic, large block-like ones scatter over the cores).
    let mut client = Client::connect(addr)?;
    let q = client.add_query(".*x{ab}.*", b"ab")?;
    let text: Vec<u8> = b"ab".repeat(512);
    let mono = client.add_doc(&text)?;
    let auto = client.add_doc_sharded(&text, 0)?;
    println!(
        "registered query {q}, document {} ({} bytes) and auto-sharded twin {} (k = {})",
        mono.id, mono.len, auto.id, auto.shards
    );

    // The task suite over the wire.  The first request pays the matrix
    // build; every later task on the pair hits the cache.
    let (non_empty, stats) = client.non_empty(q, mono.id)?;
    println!(
        "non-empty: {non_empty} (cache {}, build {} µs)",
        if stats.cache_hit { "hit" } else { "miss" },
        stats.build_us
    );
    let (count, stats) = client.count(q, mono.id)?;
    println!(
        "count: {count} (cache {})",
        if stats.cache_hit { "hit" } else { "miss" }
    );
    let (tuples, _) = client.compute(q, mono.id, Some(3))?;
    println!("compute limit=3: {} tuples", tuples.len());
    let (verdict, _) = client.model_check(q, mono.id, &tuples[0])?;
    println!("model check of the first computed tuple: {verdict}");

    // Streamed enumeration: pages are flushed as they are produced, so the
    // first page arrives at the enumeration delay, not after the total.
    let start = Instant::now();
    let mut first_page = None;
    let (all, stats) = client.enumerate(q, mono.id, 0, None, |page| {
        first_page.get_or_insert_with(|| (page.len(), start.elapsed()));
    })?;
    let (first_len, first_at) = first_page.expect("at least one page");
    println!(
        "enumerate: {} results streamed ({} µs); first page of {first_len} after {} µs",
        all.len(),
        stats.task_us,
        first_at.as_micros()
    );

    // The sharded twin answers identically.
    let (count_sharded, _) = client.count(q, auto.id)?;
    assert_eq!(count, count_sharded);

    // Backpressure in one picture: a second server capped at 0 in-flight
    // requests answers with a structured `busy` error — the connection
    // survives, and retry_busy is how clients ride it out.
    let capped = Server::bind(
        "127.0.0.1:0",
        Service::new(),
        ServerConfig {
            max_inflight: 0,
            ..ServerConfig::default()
        },
    )?;
    let mut capped_client = Client::connect(capped.local_addr())?;
    let refused = capped_client.add_query(".*x{ab}.*", b"ab").unwrap_err();
    println!("starved server says: {refused}");
    assert!(refused.is_busy());
    assert_eq!(capped_client.ping()?, 2, "the connection survived the busy");
    assert!(retry_busy(3, Duration::from_millis(1), || {
        capped_client.add_query(".*x{ab}.*", b"ab")
    })
    .is_err());
    capped.shutdown_and_join();

    // Service-wide and transport counters over the wire, then a drain.
    let (service_stats, server_stats) = client.stats()?;
    println!(
        "stats: {} requests ({} enumerate), {} cache hits / {} misses, {} pages streamed",
        service_stats.requests,
        service_stats.enumerate,
        service_stats.cache_hits,
        service_stats.cache_misses,
        server_stats.pages_streamed
    );
    client.shutdown()?;
    server.join();
    println!("server drained and exited cleanly");
    Ok(())
}
