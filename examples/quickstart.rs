//! Quickstart: compress a document, compile a spanner query, and run all
//! four evaluation tasks of the paper directly on the compressed form.
//!
//! Run with `cargo run --release --example quickstart`.

use slp_spanner::prelude::*;
use slp_spanner::slp::SlpStats;

fn main() {
    // 1. A repetitive document: a config file fragment repeated many times
    //    with small edits would be typical; here we keep it fully synthetic.
    let block = b"user=alice action=login status=ok\nuser=bob action=upload status=denied\n";
    let doc_plain: Vec<u8> = block.repeat(20_000);
    println!("document length      : {} bytes", doc_plain.len());

    // 2. Compress it into a straight-line program.
    let doc = RePair::default().compress(&doc_plain);
    let stats = SlpStats::of(&doc);
    println!(
        "SLP size             : {} (ratio {:.5})",
        stats.size, stats.ratio
    );
    println!(
        "SLP depth            : {} (log2 d = {:.1})",
        stats.depth, stats.log2_len
    );

    // 3. A spanner: extract the user and the status of every "denied" line.
    // Note: unescaped whitespace in a pattern is insignificant (it is layout,
    // like in verbose regex dialects); a literal space is written `\ `.
    let query = compile_query(
        ".*\nuser=u{[a-z]+}\\ action=[a-z]+\\ status=s{denied}\n.*",
        block,
    )
    .expect("the pattern is well-formed");
    let u = query.variables().get("u").unwrap();
    let s = query.variables().get("s").unwrap();

    // 4. Evaluate directly on the compressed document.
    let spanner = SlpSpanner::new(&query, &doc).expect("query and document are compatible");

    println!("non-empty            : {}", spanner.is_non_empty());

    // Model checking: is a specific tuple a result?  (We take one real
    // result and one deliberately shifted variant.)
    let candidate = spanner
        .enumerate()
        .next()
        .expect("the spanner is non-empty");
    println!(
        "model check (real)   : {}",
        spanner.check(&candidate).unwrap()
    );
    let mut shifted = SpanTuple::empty(2);
    let real_u = candidate.get(u).unwrap();
    let real_s = candidate.get(s).unwrap();
    shifted.set(u, Span::new(real_u.start + 1, real_u.end + 1).unwrap());
    shifted.set(s, Span::new(real_s.start + 1, real_s.end + 1).unwrap());
    println!(
        "model check (shifted): {}",
        spanner.check(&shifted).unwrap()
    );

    // Enumeration with logarithmic delay: stream the first few results.
    println!("first 3 results:");
    for tuple in spanner.enumerate().take(3) {
        let user = tuple.get(u).unwrap();
        let status = tuple.get(s).unwrap();
        println!(
            "  user = {:?} at {},  status = {:?} at {}",
            String::from_utf8_lossy(user.value(&doc_plain).unwrap()),
            user,
            String::from_utf8_lossy(status.value(&doc_plain).unwrap()),
            status,
        );
    }

    // Counting all results still never decompresses the document.
    println!("total results        : {}", spanner.count());

    // For serving many queries over many documents concurrently — with
    // cache statistics and memory bounds — see `examples/service_tasks.rs`.
}
