//! Integration tests for the two-stage evaluation engine: query-side
//! preparation is shared across documents, document-side preparation across
//! queries, batch evaluation matches per-pair evaluation, and the parallel
//! matrix pass is output-identical to the serial one.

use slp_spanner::eval::matrices::Preprocessed;
use slp_spanner::eval::prepared::end_transform_count;
use slp_spanner::prelude::*;
use slp_spanner::slp::families;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// The end-transformation counter is process-global, so tests in this file
/// serialise on a lock to keep their counter windows disjoint.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn documents() -> Vec<NormalFormSlp<u8>> {
    vec![
        Bisection.compress(b"aabbaabbab"),
        RePair::default().compress(b"abababab"),
        families::power_word(b"ab", 256),
        Bisection.compress(b"ba"),
        families::power_word(b"ab", 33),
    ]
}

fn queries() -> Vec<SpannerAutomaton<u8>> {
    vec![
        compile_query(".*x{a+}y{b+}.*", b"ab").unwrap(),
        compile_query(".*x{ab}.*", b"ab").unwrap(),
        compile_query("(a|b)*x{abb?}(a|b)*", b"ab").unwrap(),
    ]
}

/// Preparing one query against `k` documents performs the automaton-side
/// transformation (ε-removal + end-transformation) exactly once.
#[test]
fn query_preparation_runs_once_across_documents() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let query = queries().remove(0);
    let docs = documents();

    let before = end_transform_count();
    let mut engine = Engine::new();
    let q = engine.add_query(&query);
    let dids: Vec<DocumentId> = docs.iter().map(|d| engine.add_document(d)).collect();
    let mut counts = Vec::new();
    for &d in &dids {
        counts.push(engine.evaluate(q, d).count());
    }
    let after = end_transform_count();
    assert_eq!(
        after - before,
        1,
        "one query × {} documents must end-transform exactly once",
        docs.len()
    );

    // And the results are the fresh-per-pair ones.
    for (doc, count) in docs.iter().zip(counts) {
        let fresh = SlpSpanner::new(&query, doc).unwrap();
        assert_eq!(count, fresh.count());
    }
}

/// One document serves `k` queries from a single document-side preparation,
/// caching one matrix set per query; results equal fresh per-pair
/// evaluation.
#[test]
fn document_preparation_is_shared_across_queries() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let doc = families::power_word(b"ab", 128);
    let qs = queries();

    let mut engine = Engine::new();
    let d = engine.add_document(&doc);
    let qids: Vec<QueryId> = qs.iter().map(|m| engine.add_query(m)).collect();
    for (m, &q) in qs.iter().zip(&qids) {
        let engine_result: BTreeSet<SpanTuple> =
            engine.evaluate(q, d).compute().into_iter().collect();
        let fresh: BTreeSet<SpanTuple> = SlpSpanner::new(m, &doc)
            .unwrap()
            .compute()
            .into_iter()
            .collect();
        assert_eq!(engine_result, fresh);
    }
    assert_eq!(engine.document(d).cached_query_count(), qs.len());

    // Re-evaluating every pair hits the cache: no new matrix sets appear.
    for &q in &qids {
        assert!(engine.evaluate(q, d).count() == engine.evaluate(q, d).count());
    }
    assert_eq!(engine.document(d).cached_query_count(), qs.len());
}

/// `Service::run_batch` over the full query × document cross-product
/// returns exactly what a fresh `SlpSpanner` per pair computes — it is the
/// one batch fan-out point (the old `Engine::evaluate_batch` wrapper is
/// gone).
#[test]
fn run_batch_matches_fresh_slp_spanner_per_pair() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let qs = queries();
    let docs = documents();

    let service = Service::new();
    let qids: Vec<QueryId> = qs.iter().map(|m| service.add_query(m)).collect();
    let dids: Vec<DocumentId> = docs.iter().map(|d| service.add_document(d)).collect();
    let requests: Vec<TaskRequest> = qids
        .iter()
        .flat_map(|&q| {
            dids.iter().map(move |&d| TaskRequest {
                query: q,
                doc: d,
                task: Task::Compute { limit: None },
            })
        })
        .collect();

    let batch = service.run_batch(&requests);
    assert_eq!(batch.len(), qs.len() * docs.len());

    for ((qi, di), response) in qids
        .iter()
        .enumerate()
        .flat_map(|(qi, _)| dids.iter().enumerate().map(move |(di, _)| (qi, di)))
        .zip(batch)
    {
        let response = response.expect("compute cannot fail on pooled pairs");
        let result = response.outcome.into_tuples().unwrap();
        let fresh = SlpSpanner::new(&qs[qi], &docs[di]).unwrap();
        let expected: BTreeSet<SpanTuple> = fresh.compute().into_iter().collect();
        let got: BTreeSet<SpanTuple> = result.iter().cloned().collect();
        assert_eq!(got, expected, "query {qi} × document {di}");
        assert_eq!(
            result.len(),
            expected.len(),
            "duplicates in query {qi} × document {di}"
        );
    }
}

/// All four tasks answered through the engine agree with the facade on a
/// pair with a non-trivial result set.
#[test]
fn engine_evaluation_answers_all_tasks() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let query = compile_query(".*x{a+}y{b+}.*", b"ab").unwrap();
    let doc = Bisection.compress(b"aabbaabb");

    let mut engine = Engine::new();
    let q = engine.add_query(&query);
    let d = engine.add_document(&doc);
    let eval = engine.evaluate(q, d);
    let fresh = SlpSpanner::new(&query, &doc).unwrap();

    assert!(eval.is_non_empty());
    assert_eq!(eval.count(), fresh.count());
    let computed: BTreeSet<SpanTuple> = eval.compute().into_iter().collect();
    let enumerated: BTreeSet<SpanTuple> = eval.enumerate().collect();
    assert_eq!(computed, enumerated);
    for tuple in &computed {
        assert!(eval.check(tuple).unwrap());
    }
}

/// The (default-on) parallel matrix pass produces matrices identical to the
/// serial pass.  Under `--no-default-features` both sides take the serial
/// path and the assertion is trivially true, so this test is meaningful
/// exactly when `parallel` is enabled.
#[test]
fn parallel_matrices_equal_serial_matrices() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    for query in &queries() {
        let prepared = PreparedQuery::determinized(query);
        for doc in &documents() {
            let prepared_doc = PreparedDocument::new(doc);
            let via_build =
                Preprocessed::build(prepared.nfa(), prepared_doc.ended(), prepared.num_vars());
            let serial = Preprocessed::build_serial(
                prepared.nfa(),
                prepared_doc.ended(),
                prepared.num_vars(),
            );
            assert_eq!(via_build, serial);
        }
    }
}
