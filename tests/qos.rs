//! Integration tests of protocol v3 pipelining and the QoS scheduler:
//! out-of-order completion, page interleaving on one socket, deadline
//! shedding, class-queue overflow, and v2 client compatibility.

use spanner_server::{
    Client, ErrorCode, PipelinedClient, Response, Server, ServerConfig, WireTask,
};
use spanner_slp_core::Service;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Boots a loopback server over a fresh service.
fn boot(config: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", Service::new(), config).expect("bind loopback")
}

/// Registers one query and one document whose enumeration yields `pairs`
/// tuples — the knob the tests below use to make scans slow relative to
/// point lookups.
fn register(client: &mut Client, pairs: usize) -> (u64, u64) {
    let query = client.add_query(".*x{ab}.*", b"ab").expect("add_query");
    let doc = client.add_doc(&b"ab".repeat(pairs)).expect("add_doc").id;
    (query, doc)
}

#[test]
fn cheap_tasks_complete_ahead_of_queued_scans() {
    // One dispatcher, small pages: the first enumerate occupies the worker
    // while the rest queue.  A model check submitted *last* lands in the
    // cheap class queue and the weighted-fair scheduler runs it ahead of
    // the queued scans — its reply arrives out of submission order.
    let server = boot(ServerConfig {
        scheduler_workers: 1,
        page_size: 1,
        ..ServerConfig::default()
    });
    let mut admin = Client::connect(server.local_addr()).unwrap();
    let (query, doc) = register(&mut admin, 400);
    let (tuples, _) = admin.compute(query, doc, Some(1)).unwrap();
    let witness = tuples[0].clone();

    let mut pipe = PipelinedClient::connect(server.local_addr()).unwrap();
    let scans: Vec<u64> = (0..6)
        .map(|_| {
            pipe.submit(
                query,
                doc,
                WireTask::Enumerate {
                    skip: 0,
                    limit: None,
                },
            )
            .unwrap()
        })
        .collect();
    let check = pipe
        .submit(query, doc, WireTask::ModelCheck(witness))
        .unwrap();

    let replies = pipe.drain().unwrap();
    assert_eq!(replies.len(), 7);
    for reply in &replies {
        assert!(!reply.is_error(), "unexpected error: {:?}", reply.response);
        if scans.contains(&reply.id) {
            assert_eq!(reply.pages.len(), 400, "scan {} lost pages", reply.id);
        }
    }
    let position = |id: u64| replies.iter().position(|r| r.id == id).unwrap();
    // The check was submitted seventh but must not complete seventh: at
    // least one earlier-submitted scan is still queued behind it.
    assert!(
        position(check) < position(*scans.last().unwrap()),
        "model check completed after every scan — no out-of-order completion"
    );

    admin.shutdown().unwrap();
    server.join();
}

#[test]
fn pages_interleave_with_point_lookups_on_one_socket() {
    // Raw socket so the arrival order of frames is observable: a streaming
    // enumerate's pages and concurrent model-check replies must share the
    // connection, not serialise behind each other.
    let server = boot(ServerConfig {
        scheduler_workers: 2,
        page_size: 1,
        ..ServerConfig::default()
    });
    let mut admin = Client::connect(server.local_addr()).unwrap();
    let (query, doc) = register(&mut admin, 300);
    let (tuples, _) = admin.compute(query, doc, Some(1)).unwrap();
    let witness = tuples[0].clone();

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut submit = |id: u64, task: WireTask| {
        let mut frame = spanner_server::Request::Task {
            tenant: 0,
            trace: 0,
            query,
            doc,
            task,
        }
        .encode_with(spanner_server::FrameMeta { id, deadline_us: 0 });
        frame.push(b'\n');
        writer.write_all(&frame).unwrap();
        writer.flush().unwrap();
    };
    let read_frame = |reader: &mut BufReader<TcpStream>| -> (u64, Response) {
        let mut line = Vec::new();
        reader.read_until(b'\n', &mut line).unwrap();
        assert_eq!(line.pop(), Some(b'\n'));
        Response::decode_framed(&line).unwrap()
    };

    const SCAN: u64 = 1;
    submit(
        SCAN,
        WireTask::Enumerate {
            skip: 0,
            limit: None,
        },
    );
    // Keep feeding point lookups until the scan's terminal frame arrives,
    // recording the arrival order of every frame.
    let mut arrivals: Vec<(u64, bool)> = Vec::new();
    let mut next_check = SCAN + 1;
    let mut outstanding_checks = 0usize;
    loop {
        submit(next_check, WireTask::ModelCheck(witness.clone()));
        next_check += 1;
        outstanding_checks += 1;
        let (id, response) = read_frame(&mut reader);
        let page = matches!(response, Response::Page { .. });
        if id != SCAN {
            outstanding_checks -= 1;
        }
        arrivals.push((id, page));
        if id == SCAN && !page {
            assert!(matches!(response, Response::StreamEnd { .. }));
            break;
        }
    }
    for _ in 0..outstanding_checks {
        let (id, response) = read_frame(&mut reader);
        assert_ne!(id, SCAN);
        assert!(matches!(response, Response::Checked { .. }));
    }

    let first_page = arrivals.iter().position(|&(id, page)| id == SCAN && page);
    let interleaved =
        first_page.is_some_and(|start| arrivals[start..].iter().any(|&(id, _)| id != SCAN));
    assert!(
        interleaved,
        "no model-check reply arrived between the scan's pages: {arrivals:?}"
    );

    admin.shutdown().unwrap();
    server.join();
}

#[test]
fn late_queued_work_is_shed_as_expired_not_busy() {
    let server = boot(ServerConfig {
        scheduler_workers: 1,
        page_size: 1,
        ..ServerConfig::default()
    });
    let mut admin = Client::connect(server.local_addr()).unwrap();
    let (query, doc) = register(&mut admin, 800);

    let mut pipe = PipelinedClient::connect(server.local_addr()).unwrap();
    // The scan occupies the only dispatcher; the deadlined count waits in
    // queue far past its microsecond budget and must be shed as expired —
    // the structured signal for "too late", distinct from busy.
    let scan = pipe
        .submit(
            query,
            doc,
            WireTask::Enumerate {
                skip: 0,
                limit: None,
            },
        )
        .unwrap();
    let doomed = pipe
        .submit_with_deadline(query, doc, WireTask::Count, Duration::from_micros(1))
        .unwrap();
    // A generous budget survives the same queue wait.
    let patient = pipe
        .submit_with_deadline(query, doc, WireTask::Count, Duration::from_secs(30))
        .unwrap();

    for reply in pipe.drain().unwrap() {
        if reply.id == scan {
            assert!(matches!(reply.response, Response::StreamEnd { .. }));
        } else if reply.id == doomed {
            match &reply.response {
                Response::Error { code, detail } => {
                    assert_eq!(*code, ErrorCode::Expired, "wrong code: {detail}");
                }
                other => panic!("doomed count was not shed: {other:?}"),
            }
        } else {
            assert_eq!(reply.id, patient);
            assert!(
                matches!(reply.response, Response::Counted { .. }),
                "patient count shed: {:?}",
                reply.response
            );
        }
    }

    let stats = admin.stats_full().unwrap();
    assert!(stats.server.shed_expired >= 1, "shed_expired not counted");
    assert_eq!(stats.server.shed_overflow, 0);
    admin.shutdown().unwrap();
    server.join();
}

#[test]
fn class_queue_overflow_sheds_busy_without_penalising_other_classes() {
    let server = boot(ServerConfig {
        scheduler_workers: 1,
        page_size: 1,
        class_queue_depth: 2,
        ..ServerConfig::default()
    });
    let mut admin = Client::connect(server.local_addr()).unwrap();
    let (query, doc) = register(&mut admin, 800);

    let mut pipe = PipelinedClient::connect(server.local_addr()).unwrap();
    let scan = pipe
        .submit(
            query,
            doc,
            WireTask::Enumerate {
                skip: 0,
                limit: None,
            },
        )
        .unwrap();
    // With the dispatcher pinned on the scan, the cheap class queue (bound
    // 2) overflows on the third queued count.
    let counts: Vec<u64> = (0..8)
        .map(|_| pipe.submit(query, doc, WireTask::Count).unwrap())
        .collect();

    let replies = pipe.drain().unwrap();
    let shed = replies
        .iter()
        .filter(|r| {
            counts.contains(&r.id)
                && matches!(
                    r.response,
                    Response::Error {
                        code: ErrorCode::Busy,
                        ..
                    }
                )
        })
        .count();
    let served = replies
        .iter()
        .filter(|r| counts.contains(&r.id) && matches!(r.response, Response::Counted { .. }))
        .count();
    assert_eq!(shed + served, counts.len());
    assert!(
        shed >= 1,
        "queue bound of 2 never overflowed across 8 counts"
    );
    assert!(
        served >= 2,
        "the bounded queue should still serve its depth"
    );
    // The scan itself is untouched by the cheap class overflowing.
    let scan_reply = replies.iter().find(|r| r.id == scan).unwrap();
    assert!(matches!(scan_reply.response, Response::StreamEnd { .. }));

    let stats = admin.stats_full().unwrap();
    assert!(stats.server.shed_overflow >= 1, "shed_overflow not counted");
    admin.shutdown().unwrap();
    server.join();
}

#[test]
fn v2_clients_interoperate_with_a_v3_server() {
    // A v2 client sends unframed frames with `"v":2` and expects lock-step
    // responses with no `rid` key — exactly what the inline path answers.
    let server = boot(ServerConfig::default());
    let mut admin = Client::connect(server.local_addr()).unwrap();
    let (query, doc) = register(&mut admin, 4);

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut call = |frame: &[u8]| -> Vec<u8> {
        writer.write_all(frame).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = Vec::new();
        reader.read_until(b'\n', &mut line).unwrap();
        assert_eq!(line.pop(), Some(b'\n'));
        line
    };

    let pong = call(b"{\"v\":2,\"op\":\"ping\"}");
    assert!(
        !pong.windows(5).any(|w| w == b"\"rid\""),
        "pong carries rid"
    );
    assert!(matches!(
        Response::decode(&pong).unwrap(),
        Response::Pong { proto: 3 }
    ));

    let counted = call(
        format!("{{\"v\":2,\"op\":\"task\",\"task\":\"count\",\"query\":{query},\"doc\":{doc}}}")
            .as_bytes(),
    );
    assert!(
        !counted.windows(5).any(|w| w == b"\"rid\""),
        "lock-step response carries rid"
    );
    match Response::decode(&counted).unwrap() {
        Response::Counted { value, .. } => assert_eq!(value, 4),
        other => panic!("expected a count, got {other:?}"),
    }

    admin.shutdown().unwrap();
    server.join();
}

#[test]
fn queue_depth_gauges_are_reported() {
    // The scheduler's introspection surface: both class gauges exist in
    // the stats frame (zero on an idle server) — scrape wiring depends on
    // them.
    let server = boot(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let stats = client.stats_full().unwrap();
    assert_eq!(stats.server.queue_depth_cheap, 0);
    assert_eq!(stats.server.queue_depth_expensive, 0);
    assert_eq!(stats.server.shed_expired, 0);
    assert_eq!(stats.server.shed_overflow, 0);
    client.shutdown().unwrap();
    server.join();
}
