//! Self-managing worker-fleet behaviour: content-addressed have/need
//! negotiation (warm re-builds collapse to hash-sized scatter frames),
//! worker restarts and cache pressure forcing re-negotiation instead of
//! wrong answers, adversarial hash-mismatch frames rejected at the
//! protocol layer, hedged shard passes completing under stragglers and
//! mid-hedge kills, and health-probed membership evicting and rejoining
//! workers — always with results entry-identical to the serial build.

use slp_spanner::eval::matrices::Preprocessed;
use slp_spanner::prelude::*;
use spanner_server::{Client, RemoteExecutor, Request, Response, Server, ServerConfig, WireNfa};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn boot_worker() -> Server {
    boot_worker_with_budget(ServerConfig::default().block_cache_budget)
}

fn boot_worker_with_budget(block_cache_budget: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        Service::new(),
        ServerConfig {
            worker: true,
            block_cache_budget,
            ..ServerConfig::default()
        },
    )
    .expect("bind worker")
}

/// A deterministic low-repetitiveness document (distinct shard blocks, so
/// the dedupe pass has nothing to collapse and every shard really runs).
fn block_document(len: usize) -> NormalFormSlp<u8> {
    let mut state = 0x9E37_79B9u64;
    let text: Vec<u8> = (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b'a' + ((state >> 33) % 2) as u8
        })
        .collect();
    NormalFormSlp::from_document(&text).unwrap()
}

/// A repointable (and optionally per-chunk-delaying) TCP proxy: lets a
/// test present a *stable address* whose backend can die, change, or lag —
/// the shapes worker restart and straggler tests need, without fighting
/// the kernel over rebinding a just-closed port.
fn proxy(delay: Duration) -> (SocketAddr, Arc<Mutex<Option<SocketAddr>>>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let backend = Arc::new(Mutex::new(None::<SocketAddr>));
    let shared = backend.clone();
    std::thread::spawn(move || {
        for stream in listener.incoming().take(256).flatten() {
            let Some(target) = *shared.lock().unwrap() else {
                // No backend: drop the connection, as a dead worker would.
                continue;
            };
            let Ok(upstream) = TcpStream::connect(target) else {
                continue;
            };
            let mut client_r = stream.try_clone().unwrap();
            let mut upstream_w = upstream.try_clone().unwrap();
            std::thread::spawn(move || {
                let mut buf = [0u8; 4096];
                loop {
                    match client_r.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if delay > Duration::ZERO {
                                std::thread::sleep(delay);
                            }
                            if upstream_w.write_all(&buf[..n]).is_err() {
                                break;
                            }
                            let _ = upstream_w.flush();
                        }
                    }
                }
                let _ = upstream_w.shutdown(Shutdown::Write);
            });
            let mut upstream_r = upstream;
            let mut client_w = stream;
            std::thread::spawn(move || {
                let mut buf = [0u8; 4096];
                loop {
                    match upstream_r.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if client_w.write_all(&buf[..n]).is_err() {
                                break;
                            }
                            let _ = client_w.flush();
                        }
                    }
                }
                let _ = client_w.shutdown(Shutdown::Write);
            });
        }
    });
    (addr, backend)
}

/// Runs one count through a fresh service wired to `executor` and checks
/// the cached matrices against the serial build.
fn build_and_check(
    executor: &Arc<RemoteExecutor>,
    query: &SpannerAutomaton<u8>,
    doc: &NormalFormSlp<u8>,
    k: usize,
) -> u128 {
    let reference = SlpSpanner::new(query, doc).unwrap();
    let service = Service::builder().shard_executor(executor.clone()).build();
    let q = service.add_query(query);
    let d = service.add_document_sharded(doc, k);
    let response = service
        .run(&TaskRequest {
            query: q,
            doc: d,
            task: Task::Count,
        })
        .unwrap();
    let count = response.outcome.as_count().unwrap();
    assert_eq!(count, reference.count());
    let prepared_query = service.query(q);
    let document = service.document(d);
    let via_fleet = document.cached_matrices(&prepared_query).unwrap();
    let serial = Preprocessed::build_serial(
        prepared_query.nfa(),
        document.ended(),
        prepared_query.num_vars(),
    );
    assert_eq!(via_fleet.r, serial.r, "fleet build must be entry-identical");
    assert_eq!(via_fleet.leaf_tables, serial.leaf_tables);
    count
}

/// The headline negotiation criterion: re-building the same (query, doc)
/// pair against a warm fleet ships ≥10× fewer scatter bytes than the cold
/// build — the frames carry content hashes, not block bytes — and the
/// workers serve the passes from their block caches.
#[test]
fn warm_rebuilds_collapse_to_hash_sized_scatter() {
    let workers = [boot_worker(), boot_worker()];
    let executor = Arc::new(RemoteExecutor::new(
        workers.iter().map(|w| w.local_addr().to_string()),
    ));
    let query = compile_query(".*x{a+}y{b+}.*", b"ab").unwrap();
    let doc = block_document(4096);

    build_and_check(&executor, &query, &doc, 4);
    let cold = executor.scatter_bytes();
    assert!(cold > 0);
    assert_eq!(executor.fallback_count(), 0);

    // A fresh service re-builds the same pair (its matrix cache is cold);
    // only the executor's shipped-hash memory is warm.
    build_and_check(&executor, &query, &doc, 4);
    let warm = executor.scatter_bytes() - cold;
    assert!(warm > 0, "the warm build still scatters (hash frames)");
    assert!(
        warm * 10 <= cold,
        "warm re-build scattered {warm} bytes — not ≥10× below the {cold}-byte cold build"
    );
    assert!(executor.hash_only_pass_count() >= 1);
    assert_eq!(executor.renegotiation_count(), 0, "nothing was evicted");
    assert_eq!(executor.fallback_count(), 0);

    // The workers' caches, not re-decoding, served the warm passes.
    let hits: u64 = workers
        .iter()
        .map(|w| {
            let mut client = Client::connect(w.local_addr()).unwrap();
            let (_, server_stats) = client.stats().unwrap();
            server_stats.block_cache_hits
        })
        .sum();
    assert!(hits >= 1, "no worker reported a block-cache hit");
    for worker in workers {
        worker.shutdown_and_join();
    }
}

/// A restarted worker holds an empty cache: the coordinator's optimistic
/// hash-only frame is answered with `need`, the bytes are re-sent on the
/// same connection, and the build completes — no fallback, no wrong
/// answer, just one extra round-trip.
#[test]
fn worker_restart_forgets_its_cache_and_renegotiates() {
    let (proxy_addr, backend) = proxy(Duration::ZERO);
    let first = boot_worker();
    *backend.lock().unwrap() = Some(first.local_addr());

    let executor = Arc::new(
        RemoteExecutor::new([proxy_addr.to_string()]).with_timeout(Duration::from_secs(2)),
    );
    let query = compile_query(".*x{a+}y{b+}.*", b"ab").unwrap();
    let doc = block_document(4096);
    build_and_check(&executor, &query, &doc, 4);
    assert_eq!(executor.fallback_count(), 0);

    // "Restart" the worker: a different process at the same address.
    first.shutdown_and_join();
    let second = boot_worker();
    *backend.lock().unwrap() = Some(second.local_addr());

    // The pooled connection died with the first worker, so the next build
    // may spend fallbacks rediscovering that; the build after it runs on
    // fresh connections and must renegotiate the forgotten blocks.
    build_and_check(&executor, &query, &doc, 4);
    build_and_check(&executor, &query, &doc, 4);
    assert!(
        executor.renegotiation_count() >= 1,
        "the restarted worker should have answered `need` at least once"
    );
    let mut client = Client::connect(second.local_addr()).unwrap();
    let (_, server_stats) = client.stats().unwrap();
    assert!(
        server_stats.block_cache_misses >= 1,
        "the fresh worker's cache started empty"
    );
    drop(client);
    second.shutdown_and_join();
}

/// A zero-budget block cache retains nothing: every warm hash-only frame
/// is answered `need` and re-sent inline — correctness never depends on
/// the cache actually holding anything.
#[test]
fn zero_cache_budgets_force_renegotiation_not_wrong_answers() {
    let worker = boot_worker_with_budget(0);
    let executor = Arc::new(RemoteExecutor::new([worker.local_addr().to_string()]));
    let query = compile_query(".*x{a+}y{b+}.*", b"ab").unwrap();
    let doc = block_document(2048);
    build_and_check(&executor, &query, &doc, 4);
    build_and_check(&executor, &query, &doc, 4);
    assert!(
        executor.renegotiation_count() >= 1,
        "a cacheless worker must demand the bytes again"
    );
    assert_eq!(executor.fallback_count(), 0);
    assert_eq!(executor.hash_only_pass_count(), 0);
    let mut client = Client::connect(worker.local_addr()).unwrap();
    let (_, server_stats) = client.stats().unwrap();
    assert_eq!(server_stats.block_cache_hits, 0);
    drop(client);
    worker.shutdown_and_join();
}

/// Protocol-level negotiation and trust: claimed content hashes are
/// verified by recomputation, so a hash-collision-shaped adversarial frame
/// (bytes that do not hash to their claim) is rejected as malformed and
/// never poisons the cache.
#[test]
fn mismatched_content_hashes_are_rejected_as_malformed() {
    // Derive a legitimate (nfa, block) pair from a local service.
    let service = Service::new();
    let query = compile_query(".*x{a+}y{b+}.*", b"ab").unwrap();
    let q = service.add_query(&query);
    let d = service.add_document(&block_document(512));
    let prepared_query = service.query(q);
    let document = service.document(d);
    let wire_nfa = WireNfa::from_nfa(prepared_query.nfa());
    let nfa_hash = wire_nfa.content_hash();
    let rules = document.ended().rules().to_vec();
    let root = document.ended().start().0 as u64;
    let block_hash = document.ended().content_hash();

    let worker = boot_worker();
    let stream = TcpStream::connect(worker.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut call = |request: &Request| -> Response {
        let mut frame = request.encode();
        frame.push(b'\n');
        writer.write_all(&frame).unwrap();
        writer.flush().unwrap();
        let mut line = Vec::new();
        reader.read_until(b'\n', &mut line).unwrap();
        line.pop();
        Response::decode(&line).unwrap()
    };

    // A cold hash-only frame: the worker has nothing and says so.
    let need = call(&Request::ShardBuild {
        trace: 0,
        nfa: None,
        rules: None,
        root,
        nfa_hash,
        block_hash,
    });
    assert_eq!(
        need,
        Response::NeedBlocks {
            need_nfa: true,
            need_block: true,
        }
    );

    // Bytes whose claimed hash does not match are rejected outright.
    for (bad_nfa_hash, bad_block_hash) in [(nfa_hash ^ 1, block_hash), (nfa_hash, block_hash ^ 1)] {
        let response = call(&Request::ShardBuild {
            trace: 0,
            nfa: Some(wire_nfa.clone()),
            rules: Some(rules.clone()),
            root,
            nfa_hash: bad_nfa_hash,
            block_hash: bad_block_hash,
        });
        match response {
            Response::Error { code, detail } => {
                assert_eq!(code, spanner_server::ErrorCode::Malformed);
                assert!(detail.contains("content hash"), "{detail}");
            }
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    // The falsely-claimed half must not have primed the cache: the block
    // bytes never matched their claim, so a hash-only frame still needs
    // them.  (The second bad frame's *nfa* half was honestly hashed and
    // may legitimately have been cached.)
    match call(&Request::ShardBuild {
        trace: 0,
        nfa: None,
        rules: None,
        root,
        nfa_hash,
        block_hash,
    }) {
        Response::NeedBlocks { need_block, .. } => {
            assert!(need_block, "a rejected block must not be cached");
        }
        other => panic!("expected `need`, got {other:?}"),
    }

    // An honest full frame works and primes the cache...
    let built = call(&Request::ShardBuild {
        trace: 0,
        nfa: Some(wire_nfa.clone()),
        rules: Some(rules.clone()),
        root,
        nfa_hash,
        block_hash,
    });
    assert!(matches!(built, Response::ShardBuilt { .. }));
    // ...after which the hash-only frame is served — but only with the
    // root the cached block actually has.
    let warm = call(&Request::ShardBuild {
        trace: 0,
        nfa: None,
        rules: None,
        root,
        nfa_hash,
        block_hash,
    });
    assert!(matches!(warm, Response::ShardBuilt { .. }));
    let wrong_root = call(&Request::ShardBuild {
        trace: 0,
        nfa: None,
        rules: None,
        root: root + 1,
        nfa_hash,
        block_hash,
    });
    match wrong_root {
        Response::Error { code, detail } => {
            assert_eq!(code, spanner_server::ErrorCode::Malformed);
            assert!(detail.contains("disagrees"), "{detail}");
        }
        other => panic!("expected malformed root disagreement, got {other:?}"),
    }
    worker.shutdown_and_join();
}

/// Straggling workers are hedged: with every path through a 200 ms-delay
/// proxy and a 30 ms hedge budget, each executed shard re-issues to the
/// second worker and the build still completes remotely, entry-identical.
#[test]
fn hedged_passes_complete_under_uniform_stragglers() {
    let worker = boot_worker();
    let (slow_a, backend_a) = proxy(Duration::from_millis(200));
    let (slow_b, backend_b) = proxy(Duration::from_millis(200));
    *backend_a.lock().unwrap() = Some(worker.local_addr());
    *backend_b.lock().unwrap() = Some(worker.local_addr());

    let executor = Arc::new(
        RemoteExecutor::new([slow_a.to_string(), slow_b.to_string()])
            .with_timeout(Duration::from_secs(5))
            .with_hedge_after(Duration::from_millis(30)),
    );
    let query = compile_query(".*x{a+}y{b+}.*", b"ab").unwrap();
    let doc = block_document(2048);
    build_and_check(&executor, &query, &doc, 4);
    assert!(
        executor.hedge_count() >= 1,
        "a 30 ms budget against 200 ms stragglers must hedge"
    );
    assert_eq!(executor.fallback_count(), 0, "the slow answers still land");
    assert!(executor.remote_pass_count() >= 1);
    worker.shutdown_and_join();
}

/// A "worker" that accepts, reads the request, lingers past the hedge
/// budget, then dies — so a hedged pass has *both* copies in flight when
/// both die.
fn lingering_killer() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming().take(64).flatten() {
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream);
                let mut line = Vec::new();
                let _ = reader.read_until(b'\n', &mut line);
                std::thread::sleep(Duration::from_millis(150));
                // Dropping the stream here kills the build mid-flight.
            });
        }
    });
    addr
}

/// The mid-hedge kill: the primary stalls past the budget, the hedge is
/// issued, then *both* workers die with both copies in flight.  Every
/// shard falls back locally, the hedges and fallbacks are recorded, and
/// the result is entry-identical.
#[test]
fn workers_killed_mid_hedge_fall_back_entry_identical() {
    let executor = Arc::new(
        RemoteExecutor::new([
            lingering_killer().to_string(),
            lingering_killer().to_string(),
        ])
        .with_timeout(Duration::from_secs(2))
        .with_hedge_after(Duration::from_millis(30)),
    );
    let query = compile_query(".*x{a+}y{b+}.*", b"ab").unwrap();
    let doc = block_document(2048);
    let k = 4usize;

    let reference = SlpSpanner::new(&query, &doc).unwrap();
    let service = Service::builder().shard_executor(executor.clone()).build();
    let q = service.add_query(&query);
    let d = service.add_document_sharded(&doc, k);
    let response = service
        .run(&TaskRequest {
            query: q,
            doc: d,
            task: Task::Count,
        })
        .unwrap();
    assert_eq!(response.outcome.as_count(), Some(reference.count()));
    let stats = response.shard_stats.expect("cold sharded build");
    assert_eq!(stats.fallbacks, k, "every shard fell back");
    assert!(stats.hedges >= 1, "the hedges are visible in build stats");
    assert!(executor.hedge_count() >= 1);
    assert_eq!(executor.remote_pass_count(), 0);
    assert_eq!(executor.fallback_count(), k as u64);

    let prepared_query = service.query(q);
    let document = service.document(d);
    let via_fallback = document.cached_matrices(&prepared_query).unwrap();
    let serial = Preprocessed::build_serial(
        prepared_query.nfa(),
        document.ended(),
        prepared_query.num_vars(),
    );
    assert_eq!(via_fallback.r, serial.r);
    assert_eq!(via_fallback.leaf_tables, serial.leaf_tables);
}

/// Membership: the prober evicts a dead address before scatter (no
/// fallbacks spent discovering it at build time) and re-admits it when it
/// answers pings again — including mid-sequence of builds.
#[test]
fn health_prober_evicts_dead_workers_and_readmits_rejoiners() {
    let live = boot_worker();
    let (flaky_addr, flaky_backend) = proxy(Duration::ZERO); // no backend: dead
    let executor = Arc::new(
        RemoteExecutor::new([live.local_addr().to_string(), flaky_addr.to_string()])
            .with_timeout(Duration::from_secs(2))
            .with_health_check(Duration::from_millis(25)),
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while executor.alive_worker_count() != 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(executor.alive_worker_count(), 1, "the dead address is out");
    assert!(executor.eviction_count() >= 1);

    // Builds run entirely on the survivor: no fallbacks burned on the
    // dead address.
    let query = compile_query(".*x{a+}y{b+}.*", b"ab").unwrap();
    let doc = block_document(2048);
    build_and_check(&executor, &query, &doc, 4);
    assert_eq!(executor.fallback_count(), 0);

    // The worker comes back (a live backend behind the same address) and
    // rejoins the rendezvous ranking.
    let second = boot_worker();
    *flaky_backend.lock().unwrap() = Some(second.local_addr());
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while executor.alive_worker_count() != 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(executor.alive_worker_count(), 2, "the worker rejoined");
    assert!(executor.rejoin_count() >= 1);
    build_and_check(&executor, &query, &doc, 4);
    assert_eq!(executor.fallback_count(), 0);

    live.shutdown_and_join();
    second.shutdown_and_join();
}
