//! Integration tests that pin the public API to the paper's own examples
//! (Examples 3.2, 4.1, 4.2, 6.1, 8.2 and Figures 2–4).

use slp_spanner::eval::SlpSpanner;
use slp_spanner::prelude::*;
use slp_spanner::slp::examples::{example_4_1, example_4_2};
use slp_spanner::spanner::examples::figure_2_spanner;
use slp_spanner::spanner::reference;
use std::collections::BTreeSet;

#[test]
fn example_4_1_and_4_2_derive_the_paper_documents() {
    assert_eq!(
        example_4_1().derive(),
        b"baababaabbabaababaabbaabb".to_vec()
    );
    assert_eq!(example_4_2().derive(), b"aabccaabaa".to_vec());
    assert_eq!(example_4_1().size(), 16);
}

#[test]
fn figure_2_on_example_4_2_all_tasks_agree() {
    let m = figure_2_spanner();
    let slp = example_4_2();
    let doc = slp.derive();
    let spanner = SlpSpanner::new(&m, &slp).expect("compatible");

    // Ground truth by brute force on the 10-symbol document.
    let expected = reference::evaluate(&m, &doc);
    assert!(!expected.is_empty());

    // Non-emptiness (Theorem 5.1(1)).
    assert!(spanner.is_non_empty());

    // Model checking (Theorem 5.1(2)) agrees tuple by tuple.
    for t in &expected {
        assert!(spanner.check(t).unwrap(), "missing {t:?}");
    }

    // Computation (Theorem 7.1).
    let computed: BTreeSet<SpanTuple> = spanner.compute().into_iter().collect();
    assert_eq!(computed, expected);

    // Enumeration (Theorem 8.10): same set, no duplicates.
    let enumerated: Vec<SpanTuple> = spanner.enumerate().collect();
    assert_eq!(enumerated.len(), expected.len());
    assert_eq!(enumerated.into_iter().collect::<BTreeSet<_>>(), expected);
}

#[test]
fn example_8_2_result_is_present_and_described_correctly() {
    // The (M,S₀)-tree of Figure 4 yields Λ = {(⊿y,4),(◁y,6)}, i.e. the tuple
    // t(x) = ⊥, t(y) = [4,6⟩, and m(D, Λ) = aab ⊿y cc ◁y aabaa.
    let m = figure_2_spanner();
    let slp = example_4_2();
    let spanner = SlpSpanner::new(&m, &slp).expect("compatible");
    let y = m.variables().get("y").unwrap();
    let mut t = SpanTuple::empty(2);
    t.set(y, Span::new(4, 6).unwrap());
    assert!(spanner.check(&t).unwrap());
    assert!(spanner.compute().contains(&t));
    // The y-span's value in the document is "cc".
    assert_eq!(t.get(y).unwrap().value(&slp.derive()).unwrap(), b"cc");
}

#[test]
fn section_1_4_partial_decompression_example() {
    // Section 1.4 discusses the tuple corresponding to aabcca ⊿x aba ◁x a:
    // x = [7, 10⟩ in aabccaabaa.
    let m = figure_2_spanner();
    let slp = example_4_2();
    let spanner = SlpSpanner::new(&m, &slp).expect("compatible");
    let x = m.variables().get("x").unwrap();
    let mut t = SpanTuple::empty(2);
    t.set(x, Span::new(7, 10).unwrap());
    assert!(spanner.check(&t).unwrap());
    assert_eq!(t.get(x).unwrap().value(b"aabccaabaa").unwrap(), b"aba");
}

#[test]
fn figure_2_on_example_4_2_through_the_service_api() {
    // The paper's running example phrased as service requests: every task
    // of Theorems 5.1, 7.1 and 8.10 on the Figure 2 spanner × Example 4.2
    // document, answered from one cached matrix build.
    let m = figure_2_spanner();
    let slp = example_4_2();
    let expected = reference::evaluate(&m, &slp.derive());

    let service = Service::new();
    let q = service.add_query(&m);
    let d = service.add_document(&slp);
    let run = |task: Task| {
        service
            .run(&TaskRequest {
                query: q,
                doc: d,
                task,
            })
            .expect("paper tasks succeed")
    };

    assert_eq!(run(Task::NonEmptiness).outcome.as_bool(), Some(true));
    assert_eq!(
        run(Task::Count).outcome.as_count(),
        Some(expected.len() as u128)
    );

    // Example 8.2's tuple: y = [4, 6⟩.
    let y = m.variables().get("y").unwrap();
    let mut t = SpanTuple::empty(2);
    t.set(y, Span::new(4, 6).unwrap());
    assert_eq!(
        run(Task::ModelCheck(t.clone())).outcome.as_bool(),
        Some(true)
    );

    let computed = run(Task::Compute { limit: None });
    let set: BTreeSet<SpanTuple> = computed
        .outcome
        .into_tuples()
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(set, expected);
    assert!(set.contains(&t));

    // Only the very first request built matrices; the other matrix-backed
    // tasks hit, and the model check (which runs on the original automaton
    // × SLP, not the matrices) touched the cache not at all.
    let stats = service.stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 2);
}

#[test]
fn theorem_5_1_works_on_documents_too_large_to_decompress() {
    // a^(2^40) ≈ 10^12 symbols: decompression is out of the question, but
    // the compressed algorithms answer instantly from the 41-rule SLP.
    let slp = slp_spanner::slp::families::power_of_two_unary(b'a', 40);
    let m = figure_2_spanner();
    assert!(slp_spanner::eval::nonemptiness::is_non_empty(&m, &slp));

    let x = m.variables().get("x").unwrap();
    let mut deep_tuple = SpanTuple::empty(2);
    deep_tuple.set(x, Span::new(1 << 39, (1 << 39) + 5).unwrap());
    assert!(slp_spanner::eval::model_check::check(&m, &slp, &deep_tuple).unwrap());
}
