//! Cross-shard equivalence: evaluating a document through the
//! scatter-gather shard path (split at the start rule, per-shard matrix
//! passes, root merge) must be indistinguishable from the monolithic path —
//! for every task, every `k ∈ {2, 4, 8}`, on the paper's own examples, and
//! under an 8-thread stress run against the service-wide cache budget.

use slp_spanner::prelude::*;
use slp_spanner::slp::{families, shard};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

fn queries() -> Vec<SpannerAutomaton<u8>> {
    vec![
        slp_spanner::spanner::examples::figure_2_spanner(),
        compile_query(".*x{a+}y{b+}.*", b"ab").unwrap(),
        compile_query(".*x{ab}.*", b"ab").unwrap(),
    ]
}

/// The paper's example documents plus compressed and generated ones.
fn documents() -> Vec<NormalFormSlp<u8>> {
    vec![
        slp_spanner::slp::examples::example_4_2(),
        Bisection.compress(b"aabccaabaa"),
        RePair::default().compress(b"abababababab"),
        families::power_word(b"ab", 256),
        families::power_word(b"ab", 57),
    ]
}

/// Count, NonEmptiness, Compute, Enumerate and ModelCheck on the sharded
/// path equal the monolithic reference for k ∈ {2, 4, 8} on every document.
#[test]
fn sharded_results_equal_monolithic_for_k_2_4_8() {
    for query in &queries() {
        for doc in &documents() {
            let reference = SlpSpanner::new(query, doc).unwrap();
            let ref_count = reference.count();
            let ref_set: BTreeSet<SpanTuple> = reference.compute().into_iter().collect();
            for k in [2usize, 4, 8] {
                let service = Service::new();
                let q = service.add_query(query);
                let d = service.add_document_sharded(doc, k);
                let request = |task: Task| TaskRequest {
                    query: q,
                    doc: d,
                    task,
                };

                let counted = service.run(&request(Task::Count)).unwrap();
                assert_eq!(counted.outcome.as_count(), Some(ref_count), "count, k={k}");

                let non_empty = service.run(&request(Task::NonEmptiness)).unwrap();
                assert_eq!(
                    non_empty.outcome.as_bool(),
                    Some(!ref_set.is_empty()),
                    "non-emptiness, k={k}"
                );

                let computed = service
                    .run(&request(Task::Compute { limit: None }))
                    .unwrap()
                    .outcome
                    .into_tuples()
                    .unwrap();
                assert_eq!(
                    computed.iter().cloned().collect::<BTreeSet<_>>(),
                    ref_set,
                    "compute, k={k}"
                );
                assert_eq!(computed.len() as u128, ref_count, "duplicates, k={k}");

                let enumerated = service
                    .run(&request(Task::Enumerate {
                        skip: 0,
                        limit: None,
                    }))
                    .unwrap()
                    .outcome
                    .into_tuples()
                    .unwrap();
                assert_eq!(
                    enumerated.into_iter().collect::<BTreeSet<_>>(),
                    ref_set,
                    "enumerate, k={k}"
                );

                if let Some(tuple) = ref_set.iter().next() {
                    let checked = service
                        .run(&request(Task::ModelCheck(tuple.clone())))
                        .unwrap();
                    assert_eq!(checked.outcome.as_bool(), Some(true), "model check, k={k}");
                }
            }
        }
    }
}

/// A cache miss on a sharded document reports per-shard build and merge
/// timings; later hits do not.
#[test]
fn shard_stats_appear_exactly_on_sharded_misses() {
    let service = Service::new();
    let q = service.add_query(&compile_query(".*x{ab}.*", b"ab").unwrap());
    let sharded = service.add_document_sharded(&families::power_word(b"ab", 128), 4);
    let mono = service.add_document(&families::power_word(b"ab", 128));

    let miss = service
        .run(&TaskRequest {
            query: q,
            doc: sharded,
            task: Task::Count,
        })
        .unwrap();
    assert!(!miss.stats.cache_hit);
    let stats = miss.shard_stats.expect("sharded misses carry shard stats");
    assert_eq!(stats.k(), 4);
    assert!(stats.critical_path() <= stats.total());

    let hit = service
        .run(&TaskRequest {
            query: q,
            doc: sharded,
            task: Task::Count,
        })
        .unwrap();
    assert!(hit.stats.cache_hit);
    assert!(hit.shard_stats.is_none(), "hits rebuild nothing");

    let mono_response = service
        .run(&TaskRequest {
            query: q,
            doc: mono,
            task: Task::Count,
        })
        .unwrap();
    assert!(mono_response.shard_stats.is_none(), "monolithic builds");
    assert_eq!(mono_response.outcome.as_count(), miss.outcome.as_count());
}

/// 8 threads hammer one shared service holding sharded documents (mixed
/// k), interleaving tasks in thread-dependent orders; every response must
/// equal the serial monolithic reference.
#[test]
fn eight_thread_stress_over_sharded_documents_matches_reference() {
    let queries = queries();
    let docs = documents();
    let shard_counts = [2usize, 4, 8, 4, 2];

    // Serial monolithic reference.
    let mut counts = Vec::new();
    let mut sets = Vec::new();
    for m in &queries {
        let mut count_row = Vec::new();
        let mut set_row = Vec::new();
        for d in &docs {
            let fresh = SlpSpanner::new(m, d).unwrap();
            count_row.push(fresh.count());
            set_row.push(fresh.compute().into_iter().collect::<BTreeSet<_>>());
        }
        counts.push(count_row);
        sets.push(set_row);
    }

    let service = Service::new();
    let qids: Vec<QueryId> = queries.iter().map(|m| service.add_query(m)).collect();
    let dids: Vec<DocumentId> = docs
        .iter()
        .zip(&shard_counts)
        .map(|(d, &k)| service.add_document_sharded(d, k))
        .collect();

    const THREADS: usize = 8;
    const ROUNDS: usize = 3;
    let failures = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let service = &service;
            let qids = &qids;
            let dids = &dids;
            let counts = &counts;
            let sets = &sets;
            let failures = &failures;
            scope.spawn(move || {
                let pairs = qids.len() * dids.len();
                for round in 0..ROUNDS {
                    for step in 0..pairs {
                        // Stride coprime to the 15-pair grid so threads race
                        // the same cold shard builds in different orders.
                        let k = (step * (2 * thread + 1) + round) % pairs;
                        let (qi, di) = (k / dids.len(), k % dids.len());
                        let request = |task: Task| TaskRequest {
                            query: qids[qi],
                            doc: dids[di],
                            task,
                        };
                        let ok = match (thread + step + round) % 3 {
                            0 => {
                                let got = service.run(&request(Task::Count)).unwrap();
                                got.outcome.as_count() == Some(counts[qi][di])
                            }
                            1 => {
                                let got = service
                                    .run(&request(Task::Compute { limit: None }))
                                    .unwrap();
                                got.outcome
                                    .into_tuples()
                                    .unwrap()
                                    .into_iter()
                                    .collect::<BTreeSet<_>>()
                                    == sets[qi][di]
                            }
                            _ => {
                                let got = service.run(&request(Task::NonEmptiness)).unwrap();
                                got.outcome.as_bool() == Some(!sets[qi][di].is_empty())
                            }
                        };
                        if !ok {
                            failures.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(failures.load(Ordering::SeqCst), 0);
    let stats = service.stats();
    assert_eq!(
        stats.requests as usize,
        THREADS * ROUNDS * qids.len() * dids.len()
    );
    assert!(stats.cache_hits > stats.cache_misses, "{stats:?}");
}

/// The cache budget is service-wide: matrices of *different documents*
/// compete for one pool under a shared eviction clock, the resident total
/// never exceeds the single budget, and evicted pairs rebuild identically.
#[test]
fn global_budget_is_shared_across_documents_and_shards() {
    let query = compile_query(".*x{ab}.*", b"ab").unwrap();
    let docs: Vec<NormalFormSlp<u8>> = [64u64, 96, 128, 160]
        .iter()
        .map(|&k| families::power_word(b"ab", k))
        .collect();
    let expected: Vec<u128> = docs
        .iter()
        .map(|d| SlpSpanner::new(&query, d).unwrap().count())
        .collect();

    // Probe one pair's matrix size on an unbounded service.
    let probe = {
        let service = Service::new();
        let q = service.add_query(&query);
        let d = service.add_document_sharded(&docs[0], 2);
        service
            .run(&TaskRequest {
                query: q,
                doc: d,
                task: Task::NonEmptiness,
            })
            .unwrap()
            .stats
            .matrix_bytes
    };

    // One budget for the whole service: about 2.5 matrix sets for 4
    // documents (one sharded, three monolithic).
    let budget = probe * 5 / 2;
    let service = Service::builder().cache_budget(budget).build();
    let q = service.add_query(&query);
    let dids: Vec<DocumentId> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            if i % 2 == 0 {
                service.add_document_sharded(d, 2)
            } else {
                service.add_document(d)
            }
        })
        .collect();

    for round in 0..3 {
        for (di, &d) in dids.iter().enumerate() {
            let response = service
                .run(&TaskRequest {
                    query: q,
                    doc: d,
                    task: Task::Count,
                })
                .unwrap();
            assert_eq!(
                response.outcome.as_count(),
                Some(expected[di]),
                "round {round}, document {di}"
            );
            assert!(
                service.stats().resident_bytes <= budget,
                "round {round}, document {di}: global budget exceeded"
            );
        }
    }
    let stats = service.stats();
    assert!(
        stats.evictions > 0,
        "4 documents cannot all stay resident in a ~2-entry pool: {stats:?}"
    );
}

/// Re-shard advice feeds *measured* shard stats back into `auto_k`: before
/// warm traffic the advice is the structural probe, after a scatter-gather
/// build it is driven by the recorded `critical_path()/total()` ratio, and
/// removal forgets the measurement.
#[test]
fn suggest_shard_count_feeds_measured_ratios_into_auto_k() {
    let service = Service::new();
    let q = service.add_query(&compile_query(".*x{ab}.*", b"ab").unwrap());

    // A low-repetitiveness block document, deliberately under-sharded.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let text: Vec<u8> = (0..4096)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            b'a' + (state % 2) as u8
        })
        .collect();
    let slp = NormalFormSlp::from_document(&text).unwrap();
    let d = service.add_document_sharded(&slp, 2);

    // Cold: no measurement yet, the structural probe answers.
    assert!(service.measured_critical_ratio(d).is_none());
    assert_eq!(
        service.suggest_shard_count_for(d, 8),
        shard::auto_k(slp.size(), 8, shard::estimate_critical_ratio(&slp, 8))
    );

    // Warm traffic records the measured ratio of the scatter-gather build.
    let response = service
        .run(&TaskRequest {
            query: q,
            doc: d,
            task: Task::Count,
        })
        .unwrap();
    let stats = response.shard_stats.expect("cold sharded build");
    let measured = service
        .measured_critical_ratio(d)
        .expect("sharded builds record their ratio");
    let expected =
        (stats.critical_path().as_secs_f64() / stats.total().as_secs_f64()).clamp(0.0, 1.0);
    assert!((measured - expected).abs() < 1e-9);
    assert_eq!(
        service.suggest_shard_count_for(d, 8),
        shard::auto_k(slp.size(), 8, measured),
        "warm advice is driven by the measurement, not the structural probe"
    );

    // Monolithic documents never record a ratio; removal forgets it.
    let mono = service.add_document(&slp);
    service
        .run(&TaskRequest {
            query: q,
            doc: mono,
            task: Task::Count,
        })
        .unwrap();
    assert!(service.measured_critical_ratio(mono).is_none());
    assert!(service.remove_document(d));
    assert!(service.measured_critical_ratio(d).is_none());
}

/// The shard split itself round-trips the paper's examples, and the
/// composed grammar derives the identical text.
#[test]
fn shard_split_round_trips_the_paper_examples() {
    for doc in documents() {
        let text = doc.derive();
        for k in [2usize, 4, 8] {
            let sharded = shard::split(&doc, k);
            assert_eq!(sharded.derive(), text);
            let (combined, layout) = sharded.compose();
            assert_eq!(combined.derive(), text);
            assert_eq!(layout.ranges.len(), sharded.k());
        }
    }
}
