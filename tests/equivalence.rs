//! Property-based integration tests: on random documents and spanners, all
//! four compressed evaluation algorithms agree with the brute-force
//! reference and with the decompress-and-solve baseline, for every
//! compressor and also after rebalancing.

use proptest::prelude::*;
use slp_spanner::baseline;
use slp_spanner::eval::{compute, enumerate::Enumerator, model_check, nonemptiness};
use slp_spanner::slp::balance::rebalance;
use slp_spanner::slp::compress::{Bisection, Chain, Compressor, Lz78, RePair};
use slp_spanner::spanner::{reference, regex, SpanTuple, SpannerAutomaton};
use std::collections::BTreeSet;

/// The query pool used by the random tests (all deterministic, ≤ 2 vars).
fn query_pool() -> Vec<SpannerAutomaton<u8>> {
    vec![
        slp_spanner::spanner::examples::figure_2_spanner(),
        regex::compile_deterministic(".*x{a+}y{b+}.*", b"abc").unwrap(),
        regex::compile_deterministic(".*x{ab}.*", b"abc").unwrap(),
        regex::compile_deterministic("(x{a})?(a|b|c)*y{c}", b"abc").unwrap(),
        regex::compile_deterministic("(a|b|c)*x{ab+c}(a|b|c)*", b"abc").unwrap(),
    ]
}

fn compressor_pool() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Bisection),
        Box::new(RePair::default()),
        Box::new(Lz78),
        Box::new(Chain),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compressed computation, enumeration, non-emptiness and the baseline
    /// all produce exactly the reference result set.
    #[test]
    fn all_evaluators_agree(doc in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..14),
                            query_idx in 0usize..5) {
        let query = &query_pool()[query_idx];
        let expected = reference::evaluate(query, &doc);

        // Decompress-and-solve baseline.
        let baseline_set: BTreeSet<SpanTuple> =
            baseline::compute_uncompressed(query, &doc).into_iter().collect();
        prop_assert_eq!(&baseline_set, &expected);

        for compressor in compressor_pool() {
            let slp = compressor.compress(&doc);

            // Non-emptiness.
            prop_assert_eq!(nonemptiness::is_non_empty(query, &slp), !expected.is_empty());

            // Computation.
            let computed: BTreeSet<SpanTuple> =
                compute::compute_all(query, &slp).unwrap().into_iter().collect();
            prop_assert_eq!(&computed, &expected, "compute/{}", compressor.name());

            // Enumeration (DFA ⇒ duplicate-free).
            let enumerated: Vec<SpanTuple> =
                Enumerator::new(query, &slp).unwrap().iter().collect();
            prop_assert_eq!(enumerated.len(), expected.len(), "enum len/{}", compressor.name());
            let enumerated: BTreeSet<SpanTuple> = enumerated.into_iter().collect();
            prop_assert_eq!(&enumerated, &expected, "enumerate/{}", compressor.name());

            // Rebalancing must not change any answer.
            let balanced = rebalance(&slp);
            let rebalanced: BTreeSet<SpanTuple> =
                compute::compute_all(query, &balanced).unwrap().into_iter().collect();
            prop_assert_eq!(&rebalanced, &expected, "rebalanced/{}", compressor.name());
        }
    }

    /// Model checking agrees with membership of the tuple in the reference
    /// result set, for result tuples and for perturbed non-results alike.
    #[test]
    fn model_checking_agrees_pointwise(doc in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..12),
                                       query_idx in 0usize..5,
                                       start in 1u64..12,
                                       len in 0u64..6) {
        let query = &query_pool()[query_idx];
        let expected = reference::evaluate(query, &doc);
        let slp = Bisection.compress(&doc);

        // Every reference result model-checks positively.
        for t in &expected {
            prop_assert!(model_check::check(query, &slp, t).unwrap());
        }

        // A candidate single-variable tuple agrees with reference membership.
        let d = doc.len() as u64;
        if query.num_vars() >= 1 && start <= d + 1 && start + len <= d + 1 {
            let mut candidate = SpanTuple::empty(query.num_vars());
            candidate.set(slp_spanner::spanner::Variable(0),
                          slp_spanner::spanner::Span::new(start, start + len).unwrap());
            let verdict = model_check::check(query, &slp, &candidate).unwrap();
            prop_assert_eq!(verdict, expected.contains(&candidate));
        }
    }

    /// The compressed membership substrate (Lemma 4.5) agrees with direct
    /// NFA simulation on random documents.
    #[test]
    fn membership_substrate_agrees(doc in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 1..40),
                                   seed in 0u64..50,
                                   q in 2usize..10) {
        let nfa = spanner_bench::random_byte_nfa(q, seed);
        let slp = RePair::default().compress(&doc);
        prop_assert_eq!(
            slp_spanner::automata::compressed_membership(&nfa, &slp),
            nfa.accepts(&doc)
        );
    }
}
