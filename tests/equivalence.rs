//! Randomised integration tests: on random documents and spanners, all
//! four compressed evaluation algorithms agree with the brute-force
//! reference and with the decompress-and-solve baseline, for every
//! compressor and also after rebalancing.
//!
//! The random cases are generated with a seeded RNG (one fixed seed per
//! property), so the suite is fully deterministic while still covering a
//! spread of documents, queries and candidate tuples — the offline
//! replacement for the original property-based (proptest) formulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slp_spanner::baseline;
use slp_spanner::eval::{compute, enumerate::Enumerator, model_check, nonemptiness};
use slp_spanner::slp::balance::rebalance;
use slp_spanner::slp::compress::{Bisection, Chain, Compressor, Lz78, RePair};
use slp_spanner::spanner::{reference, regex, SpanTuple, SpannerAutomaton};
use std::collections::BTreeSet;

/// The query pool used by the random tests (all deterministic, ≤ 2 vars).
fn query_pool() -> Vec<SpannerAutomaton<u8>> {
    vec![
        slp_spanner::spanner::examples::figure_2_spanner(),
        regex::compile_deterministic(".*x{a+}y{b+}.*", b"abc").unwrap(),
        regex::compile_deterministic(".*x{ab}.*", b"abc").unwrap(),
        regex::compile_deterministic("(x{a})?(a|b|c)*y{c}", b"abc").unwrap(),
        regex::compile_deterministic("(a|b|c)*x{ab+c}(a|b|c)*", b"abc").unwrap(),
    ]
}

fn compressor_pool() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Bisection),
        Box::new(RePair::default()),
        Box::new(Lz78),
        Box::new(Chain),
    ]
}

fn random_doc(rng: &mut StdRng, alphabet: &[u8], max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(1..=max_len);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

/// Compressed computation, enumeration, non-emptiness and the baseline
/// all produce exactly the reference result set.
#[test]
fn all_evaluators_agree() {
    let queries = query_pool();
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for case in 0..24 {
        let doc = random_doc(&mut rng, b"abc", 13);
        let query = &queries[case % queries.len()];
        let expected = reference::evaluate(query, &doc);

        // Decompress-and-solve baseline.
        let baseline_set: BTreeSet<SpanTuple> = baseline::compute_uncompressed(query, &doc)
            .into_iter()
            .collect();
        assert_eq!(baseline_set, expected, "baseline, doc {doc:?}");

        for compressor in compressor_pool() {
            let slp = compressor.compress(&doc);
            let name = compressor.name();

            // Non-emptiness.
            assert_eq!(
                nonemptiness::is_non_empty(query, &slp),
                !expected.is_empty(),
                "nonemptiness/{name}, doc {doc:?}"
            );

            // Computation.
            let computed: BTreeSet<SpanTuple> = compute::compute_all(query, &slp)
                .unwrap()
                .into_iter()
                .collect();
            assert_eq!(computed, expected, "compute/{name}, doc {doc:?}");

            // Enumeration (DFA ⇒ duplicate-free).
            let enumerated: Vec<SpanTuple> = Enumerator::new(query, &slp).unwrap().iter().collect();
            assert_eq!(
                enumerated.len(),
                expected.len(),
                "enum len/{name}, doc {doc:?}"
            );
            let enumerated: BTreeSet<SpanTuple> = enumerated.into_iter().collect();
            assert_eq!(enumerated, expected, "enumerate/{name}, doc {doc:?}");

            // Rebalancing must not change any answer.
            let balanced = rebalance(&slp);
            let rebalanced: BTreeSet<SpanTuple> = compute::compute_all(query, &balanced)
                .unwrap()
                .into_iter()
                .collect();
            assert_eq!(rebalanced, expected, "rebalanced/{name}, doc {doc:?}");
        }
    }
}

/// Every task served through the shared `Service` pool agrees with the
/// brute-force reference on random documents — one pool instance across all
/// cases, so later cases exercise warm query-side preparation.
#[test]
fn service_tasks_agree_with_the_reference() {
    use slp_spanner::prelude::*;
    let queries = query_pool();
    let service = Service::new();
    let qids: Vec<QueryId> = queries.iter().map(|m| service.add_query(m)).collect();
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    for case in 0..16 {
        let doc = random_doc(&mut rng, b"abc", 12);
        let query = &queries[case % queries.len()];
        let q = qids[case % queries.len()];
        let expected = reference::evaluate(query, &doc);
        let d = service.add_document(&Bisection.compress(&doc));
        let run = |task: Task| {
            service
                .run(&TaskRequest {
                    query: q,
                    doc: d,
                    task,
                })
                .expect("pooled tasks cannot fail")
        };

        assert_eq!(
            run(Task::NonEmptiness).outcome.as_bool(),
            Some(!expected.is_empty()),
            "nonemptiness, doc {doc:?}"
        );
        assert_eq!(
            run(Task::Count).outcome.as_count(),
            Some(expected.len() as u128),
            "count, doc {doc:?}"
        );
        let computed: BTreeSet<SpanTuple> = run(Task::Compute { limit: None })
            .outcome
            .into_tuples()
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(computed, expected, "compute, doc {doc:?}");
        let enumerated = run(Task::Enumerate {
            skip: 0,
            limit: None,
        })
        .outcome
        .into_tuples()
        .unwrap();
        assert_eq!(enumerated.len(), expected.len(), "enum len, doc {doc:?}");
        for t in &expected {
            assert_eq!(
                run(Task::ModelCheck(t.clone())).outcome.as_bool(),
                Some(true),
                "model check {t:?}, doc {doc:?}"
            );
        }
    }
    // The pool registered one document per case and five queries total.
    // Each case's first request builds its pair's matrices (one miss); the
    // Count/Compute/Enumerate follow-ups hit them (model checks bypass the
    // matrix cache entirely and count as neither).
    let stats = service.stats();
    assert_eq!(service.num_documents(), 16);
    assert!(stats.cache_hits > stats.cache_misses);
}

/// Model checking agrees with membership of the tuple in the reference
/// result set, for result tuples and for perturbed non-results alike.
#[test]
fn model_checking_agrees_pointwise() {
    let queries = query_pool();
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for case in 0..24 {
        let doc = random_doc(&mut rng, b"abc", 11);
        let query = &queries[case % queries.len()];
        let start = rng.gen_range(1u64..12);
        let len = rng.gen_range(0u64..6);
        let expected = reference::evaluate(query, &doc);
        let slp = Bisection.compress(&doc);

        // Every reference result model-checks positively.
        for t in &expected {
            assert!(
                model_check::check(query, &slp, t).unwrap(),
                "missing {t:?}, doc {doc:?}"
            );
        }

        // A candidate single-variable tuple agrees with reference membership.
        let d = doc.len() as u64;
        if query.num_vars() >= 1 && start <= d + 1 && start + len <= d + 1 {
            let mut candidate = SpanTuple::empty(query.num_vars());
            candidate.set(
                slp_spanner::spanner::Variable(0),
                slp_spanner::spanner::Span::new(start, start + len).unwrap(),
            );
            let verdict = model_check::check(query, &slp, &candidate).unwrap();
            assert_eq!(
                verdict,
                expected.contains(&candidate),
                "candidate {candidate:?}, doc {doc:?}"
            );
        }
    }
}

/// The compressed membership substrate (Lemma 4.5) agrees with direct
/// NFA simulation on random documents.
#[test]
fn membership_substrate_agrees() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    for seed in 0u64..50 {
        let doc = random_doc(&mut rng, b"ab", 39);
        let q = rng.gen_range(2usize..10);
        let nfa = spanner_bench::random_byte_nfa(q, seed);
        let slp = RePair::default().compress(&doc);
        assert_eq!(
            slp_spanner::automata::compressed_membership(&nfa, &slp),
            nfa.accepts(&doc),
            "seed {seed}, q {q}, doc {doc:?}"
        );
    }
}
