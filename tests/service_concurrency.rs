//! The service layer's concurrency contract: `run`/`run_batch` take
//! `&self`, so one shared `Service` must serve many threads — over mixed
//! cache-hit/miss pairs, racing duplicate builds, and LRU eviction under a
//! byte budget — and produce exactly the serial reference results.

use slp_spanner::prelude::*;
use slp_spanner::slp::families;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

fn pool_queries() -> Vec<SpannerAutomaton<u8>> {
    vec![
        compile_query(".*x{a+}y{b+}.*", b"ab").unwrap(),
        compile_query(".*x{ab}.*", b"ab").unwrap(),
        compile_query("(a|b)*x{abb?}(a|b)*", b"ab").unwrap(),
        compile_query(".*x{ba+}.*", b"ab").unwrap(),
    ]
}

fn pool_documents() -> Vec<NormalFormSlp<u8>> {
    vec![
        Bisection.compress(b"aabbaabbab"),
        RePair::default().compress(b"abababab"),
        families::power_word(b"ab", 128),
        Bisection.compress(b"baabba"),
        families::power_word(b"ab", 57),
    ]
}

/// What a serial, fresh-per-pair evaluation says about every pair.
struct Reference {
    counts: Vec<Vec<u128>>,
    sets: Vec<Vec<BTreeSet<SpanTuple>>>,
}

fn reference(queries: &[SpannerAutomaton<u8>], docs: &[NormalFormSlp<u8>]) -> Reference {
    let mut counts = Vec::new();
    let mut sets = Vec::new();
    for m in queries {
        let mut count_row = Vec::new();
        let mut set_row = Vec::new();
        for d in docs {
            let fresh = SlpSpanner::new(m, d).unwrap();
            count_row.push(fresh.count());
            set_row.push(fresh.compute().into_iter().collect());
        }
        counts.push(count_row);
        sets.push(set_row);
    }
    Reference { counts, sets }
}

/// Many threads × one shared `Service`, mixed tasks over the full pair
/// grid in thread-dependent orders (so hits and misses interleave and the
/// same cold pair races from several threads at once).  Every response must
/// equal the serial reference.
#[test]
fn concurrent_evaluation_matches_the_serial_reference() {
    let queries = pool_queries();
    let docs = pool_documents();
    let expected = reference(&queries, &docs);

    let service = Service::new();
    let qids: Vec<QueryId> = queries.iter().map(|m| service.add_query(m)).collect();
    let dids: Vec<DocumentId> = docs.iter().map(|d| service.add_document(d)).collect();

    const THREADS: usize = 8;
    const ROUNDS: usize = 3;
    let failures = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let service = &service;
            let expected = &expected;
            let qids = &qids;
            let dids = &dids;
            let failures = &failures;
            scope.spawn(move || {
                let pairs = qids.len() * dids.len();
                // Strides coprime to the 20-pair grid (gcd(s, 20) = 1), so
                // every thread visits every pair, each in its own order.
                const STRIDES: [usize; 8] = [1, 3, 7, 9, 11, 13, 17, 19];
                for round in 0..ROUNDS {
                    for step in 0..pairs {
                        let k = (step * STRIDES[thread % STRIDES.len()] + round) % pairs;
                        let (qi, di) = (k / dids.len(), k % dids.len());
                        let request = |task: Task| TaskRequest {
                            query: qids[qi],
                            doc: dids[di],
                            task,
                        };
                        let ok = match (thread + step + round) % 3 {
                            0 => {
                                let got = service.run(&request(Task::Count)).unwrap();
                                got.outcome.as_count() == Some(expected.counts[qi][di])
                            }
                            1 => {
                                let got = service
                                    .run(&request(Task::Compute { limit: None }))
                                    .unwrap();
                                got.outcome
                                    .into_tuples()
                                    .unwrap()
                                    .into_iter()
                                    .collect::<BTreeSet<_>>()
                                    == expected.sets[qi][di]
                            }
                            _ => {
                                let got = service.run(&request(Task::NonEmptiness)).unwrap();
                                got.outcome.as_bool() == Some(!expected.sets[qi][di].is_empty())
                            }
                        };
                        if !ok {
                            failures.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(failures.load(Ordering::SeqCst), 0);

    // Every pair is cached at most once despite the racing cold starts.
    for &d in &dids {
        assert!(service.document(d).cached_query_count() <= qids.len());
    }
    let stats = service.stats();
    assert_eq!(
        stats.requests as usize,
        THREADS * ROUNDS * qids.len() * dids.len()
    );
    assert!(
        stats.cache_hits > stats.cache_misses,
        "the grid is revisited many times: {stats:?}"
    );
}

/// `run_batch` fans the same mixed workload out across a thread scope and
/// must agree with request-by-request serial runs.
#[test]
fn run_batch_agrees_with_serial_runs() {
    let queries = pool_queries();
    let docs = pool_documents();
    let expected = reference(&queries, &docs);

    let parallel = Service::new();
    let serial = Service::builder().parallel(false).build();
    let mut requests_per = Vec::new();
    for service in [&parallel, &serial] {
        let qids: Vec<QueryId> = queries.iter().map(|m| service.add_query(m)).collect();
        let dids: Vec<DocumentId> = docs.iter().map(|d| service.add_document(d)).collect();
        let mut requests = Vec::new();
        for (qi, &q) in qids.iter().enumerate() {
            for (di, &d) in dids.iter().enumerate() {
                for task in [
                    Task::Count,
                    Task::Compute { limit: None },
                    Task::Enumerate {
                        skip: 1,
                        limit: Some(10),
                    },
                ] {
                    requests.push((
                        (qi, di),
                        TaskRequest {
                            query: q,
                            doc: d,
                            task,
                        },
                    ));
                }
            }
        }
        requests_per.push(requests);
    }

    let batches: Vec<Vec<_>> = [&parallel, &serial]
        .iter()
        .zip(&requests_per)
        .map(|(service, requests)| {
            let reqs: Vec<TaskRequest> = requests.iter().map(|(_, r)| r.clone()).collect();
            service.run_batch(&reqs)
        })
        .collect();

    for (requests, batch) in requests_per.iter().zip(batches) {
        for (((qi, di), request), response) in requests.iter().zip(batch) {
            let response = response.unwrap();
            match request.task {
                Task::Count => {
                    assert_eq!(response.outcome.as_count(), Some(expected.counts[*qi][*di]))
                }
                Task::Compute { .. } => assert_eq!(
                    response
                        .outcome
                        .into_tuples()
                        .unwrap()
                        .into_iter()
                        .collect::<BTreeSet<_>>(),
                    expected.sets[*qi][*di]
                ),
                Task::Enumerate { skip, limit } => {
                    let want = expected.counts[*qi][*di] as usize;
                    let window = want.saturating_sub(skip).min(limit.unwrap());
                    assert_eq!(response.stats.results as usize, window);
                }
                _ => unreachable!(),
            }
        }
    }
}

/// The byte budget is respected at every step, evictions happen once the
/// working set exceeds it, and evicted pairs are rebuilt with identical
/// results.
#[test]
fn eviction_respects_the_budget_and_rebuilds_correctly() {
    let queries = pool_queries();
    let doc = families::power_word(b"ab", 128);
    let expected: Vec<u128> = queries
        .iter()
        .map(|m| SlpSpanner::new(m, &doc).unwrap().count())
        .collect();

    // Probe one pair's matrix size on an unbounded service.
    let probe = {
        let service = Service::new();
        let q = service.add_query(&queries[0]);
        let d = service.add_document(&doc);
        service
            .run(&TaskRequest {
                query: q,
                doc: d,
                task: Task::NonEmptiness,
            })
            .unwrap()
            .stats
            .matrix_bytes
    };

    // Budget for about two matrix sets; four queries share the document.
    let budget = probe * 5 / 2;
    let service = Service::builder().cache_budget(budget).build();
    let qids: Vec<QueryId> = queries.iter().map(|m| service.add_query(m)).collect();
    let d = service.add_document(&doc);

    for round in 0..3 {
        for (qi, &q) in qids.iter().enumerate() {
            let response = service
                .run(&TaskRequest {
                    query: q,
                    doc: d,
                    task: Task::Count,
                })
                .unwrap();
            assert_eq!(
                response.outcome.as_count(),
                Some(expected[qi]),
                "round {round}, query {qi}: rebuilt matrices answer identically"
            );
            assert!(
                service.document(d).cache_bytes() <= budget,
                "round {round}, query {qi}: budget exceeded"
            );
        }
    }

    let stats = service.stats();
    assert!(
        stats.evictions > 0,
        "4 working-set entries cannot fit a 2-entry budget: {stats:?}"
    );
    // Later rounds cycle through the 4 queries against a 2-slot cache in
    // LRU order, so every request of rounds 2 and 3 misses (Bélády's
    // anomaly pattern) — which is exactly what proves rebuild-on-demand.
    assert!(stats.cache_misses > qids.len() as u64);
    assert!(service.document(d).cache_bytes() <= budget);
}

/// The budgeted cache under concurrency: many threads thrash a cache that
/// can hold only ~2 of 4 working-set entries, so inserts and LRU evictions
/// race continuously — every answer must still equal the serial reference,
/// the resident total must settle within budget, and in-flight evaluations
/// must survive eviction of their matrices.
#[test]
fn concurrent_eviction_keeps_results_correct_and_budget_settled() {
    let queries = pool_queries();
    let doc = families::power_word(b"ab", 128);
    let expected: Vec<u128> = queries
        .iter()
        .map(|m| SlpSpanner::new(m, &doc).unwrap().count())
        .collect();
    let probe = {
        let service = Service::new();
        let q = service.add_query(&queries[0]);
        let d = service.add_document(&doc);
        service
            .run(&TaskRequest {
                query: q,
                doc: d,
                task: Task::NonEmptiness,
            })
            .unwrap()
            .stats
            .matrix_bytes
    };
    let budget = probe * 5 / 2;

    let service = Service::builder().cache_budget(budget).build();
    let qids: Vec<QueryId> = queries.iter().map(|m| service.add_query(m)).collect();
    let d = service.add_document(&doc);
    let failures = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for thread in 0..8 {
            let service = &service;
            let qids = &qids;
            let expected = &expected;
            let failures = &failures;
            scope.spawn(move || {
                for round in 0..6 {
                    for slot in 0..qids.len() {
                        // Skew the walk per thread so evictions interleave
                        // with hits on other threads' resident pairs.
                        let qi = (slot + thread + round) % qids.len();
                        let response = service
                            .run(&TaskRequest {
                                query: qids[qi],
                                doc: d,
                                task: Task::Count,
                            })
                            .unwrap();
                        if response.outcome.as_count() != Some(expected[qi]) {
                            failures.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(failures.load(Ordering::SeqCst), 0);
    // With no insert in flight the budget invariant holds, and the 4-entry
    // working set over a ~2-entry budget must have evicted.
    assert!(service.document(d).cache_bytes() <= budget);
    let stats = service.stats();
    assert!(stats.evictions > 0, "{stats:?}");
}

/// Unbounded services never evict; the budget knob is what turns it on.
#[test]
fn unbounded_cache_never_evicts() {
    let queries = pool_queries();
    let doc = families::power_word(b"ab", 64);
    let service = Service::new();
    let qids: Vec<QueryId> = queries.iter().map(|m| service.add_query(m)).collect();
    let d = service.add_document(&doc);
    for _ in 0..2 {
        for &q in &qids {
            service
                .run(&TaskRequest {
                    query: q,
                    doc: d,
                    task: Task::NonEmptiness,
                })
                .unwrap();
        }
    }
    let stats = service.stats();
    assert_eq!(stats.evictions, 0);
    assert_eq!(service.document(d).cached_query_count(), qids.len());
    assert_eq!(
        (stats.cache_misses, stats.cache_hits),
        (qids.len() as u64, qids.len() as u64)
    );
}
