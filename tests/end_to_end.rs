//! End-to-end integration tests on realistic workloads: the compressed
//! evaluator and the decompress-and-solve baseline must extract exactly the
//! same relations from generated logs and DNA, at scales where the
//! brute-force reference is no longer usable.

use slp_spanner::baseline;
use slp_spanner::prelude::*;
use slp_spanner::workloads::documents::{dna_with_repeats, repetitive_log, LogOptions};
use slp_spanner::workloads::queries;
use std::collections::BTreeSet;

#[test]
fn log_key_value_extraction_matches_baseline() {
    let plain = repetitive_log(&LogOptions {
        lines: 400,
        templates: 8,
        seed: 99,
    });
    let slp = RePair::default().compress(&plain);
    let query = queries::key_value();

    let spanner = SlpSpanner::new(&query.automaton, &slp).expect("query compiles");
    let compressed: BTreeSet<SpanTuple> = spanner.enumerate().collect();
    let uncompressed: BTreeSet<SpanTuple> =
        baseline::compute_uncompressed(&query.automaton, &plain)
            .into_iter()
            .collect();
    assert_eq!(compressed, uncompressed);
    assert!(!compressed.is_empty());

    // Spot check: every extracted key/value pair is a plausible slice.
    let k = query.automaton.variables().get("k").unwrap();
    let v = query.automaton.variables().get("v").unwrap();
    for t in compressed.iter().take(50) {
        let key = t.get(k).unwrap().value(&plain).unwrap();
        let value = t.get(v).unwrap().value(&plain).unwrap();
        assert!(key.iter().all(|c| c.is_ascii_lowercase()));
        assert!(value.iter().all(|c| c.is_ascii_digit()));
    }
}

#[test]
fn dna_motif_counts_match_baseline() {
    let plain = dna_with_repeats(500, 40, 0.01, 4);
    let slp = RePair::default().compress(&plain);
    let query = queries::dna_tata();
    let spanner = SlpSpanner::new(&query.automaton, &slp).expect("query compiles");
    let compressed = spanner.count();
    let uncompressed = baseline::compute_uncompressed(&query.automaton, &plain).len();
    assert_eq!(compressed, uncompressed as u128);
}

#[test]
fn figure2_on_generated_documents_matches_baseline() {
    let query = queries::figure2();
    let plain = slp_spanner::workloads::documents::tunable_repetitiveness(2_000, 16, 0.05, 21);
    // Restrict to the {a,b,c} alphabet of Figure 2 by remapping.
    let plain: Vec<u8> = plain.iter().map(|c| b'a' + (c - b'a') % 3).collect();
    let slp = RePair::default().compress(&plain);
    let spanner = SlpSpanner::new(&query.automaton, &slp).expect("compatible");
    let compressed: BTreeSet<SpanTuple> = spanner.enumerate().collect();
    let uncompressed: BTreeSet<SpanTuple> =
        baseline::compute_uncompressed(&query.automaton, &plain)
            .into_iter()
            .collect();
    assert_eq!(compressed, uncompressed);
}

#[test]
fn counting_huge_compressed_documents_is_fast_and_exact() {
    // (ab)^k for k = 2^18: exactly k results for the ab_blocks query.
    let k = 1u64 << 16;
    let slp = slp_spanner::slp::families::power_word(b"ab", k);
    let query = queries::ab_blocks();
    let spanner = SlpSpanner::new(&query.automaton, &slp).expect("compatible");
    assert_eq!(spanner.count() as u64, k);
}

#[test]
fn service_extracts_log_windows_without_materialising_everything() {
    // The same extraction as above, phrased as service requests: count
    // first, then page through the results with Enumerate windows; both
    // answers must match the baseline on the decompressed text.
    let plain = repetitive_log(&LogOptions {
        lines: 300,
        templates: 6,
        seed: 41,
    });
    let slp = RePair::default().compress(&plain);
    let query = queries::key_value();
    let expected: BTreeSet<SpanTuple> = baseline::compute_uncompressed(&query.automaton, &plain)
        .into_iter()
        .collect();

    let service = Service::new();
    let q = service.add_query(&query.automaton);
    let d = service.add_document(&slp);
    let counted = service
        .run(&TaskRequest {
            query: q,
            doc: d,
            task: Task::Count,
        })
        .expect("count succeeds");
    assert_eq!(counted.outcome.as_count(), Some(expected.len() as u128));
    assert!(
        !counted.stats.cache_hit,
        "first request builds the matrices"
    );

    let mut paged: BTreeSet<SpanTuple> = BTreeSet::new();
    let page = 100;
    for window in 0.. {
        let response = service
            .run(&TaskRequest {
                query: q,
                doc: d,
                task: Task::Enumerate {
                    skip: window * page,
                    limit: Some(page),
                },
            })
            .expect("enumeration succeeds");
        assert!(response.stats.cache_hit, "later requests reuse matrices");
        let tuples = response.outcome.into_tuples().unwrap();
        let done = tuples.len() < page;
        paged.extend(tuples);
        if done {
            break;
        }
    }
    assert_eq!(paged, expected);
}

#[test]
fn streaming_results_from_a_large_log() {
    let plain = repetitive_log(&LogOptions {
        lines: 5_000,
        templates: 8,
        seed: 3,
    });
    let slp = RePair::default().compress(&plain);
    let query = queries::log_error_value();
    let spanner = SlpSpanner::new(&query.automaton, &slp).expect("compatible");
    // Streaming the first 100 results does not require materialising all.
    let first: Vec<SpanTuple> = spanner.enumerate().take(100).collect();
    assert_eq!(first.len(), 100);
    let x = query.automaton.variables().get("x").unwrap();
    for t in &first {
        let value = t.get(x).unwrap().value(&plain).unwrap();
        assert!(!value.is_empty() && value.iter().all(|c| c.is_ascii_digit()));
    }
}
