//! End-to-end request tracing: a sampled task returns a stitched span
//! tree (admission, cache, per-shard scatter work, task execution), a
//! remote sharded build grafts worker-recorded fragments under the
//! coordinator's `shard_rpc` spans, unsampled requests return no trace at
//! all, and the latency histograms in `stats` observe every request.

use slp_spanner::prelude::*;
use spanner_server::{Client, RemoteExecutor, Server, ServerConfig};
use spanner_slp_core::trace::SpanRec;
use std::sync::Arc;

fn boot() -> Server {
    Server::bind("127.0.0.1:0", Service::new(), ServerConfig::default()).expect("bind")
}

fn boot_worker() -> Server {
    Server::bind(
        "127.0.0.1:0",
        Service::new(),
        ServerConfig {
            worker: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind worker")
}

/// A deterministic low-repetitiveness document (distinct shard blocks, so
/// every shard really runs).
fn block_text(len: usize) -> Vec<u8> {
    let mut state = 0x9E37_79B9u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b'a' + ((state >> 33) % 2) as u8
        })
        .collect()
}

fn names(spans: &[SpanRec]) -> Vec<&str> {
    spans.iter().map(|s| s.name.as_str()).collect()
}

/// Every parent index must point at an earlier span (the recorder appends
/// children after their parents, and grafts remap into the same space).
fn assert_well_parented(spans: &[SpanRec]) {
    for (i, span) in spans.iter().enumerate() {
        if let Some(p) = span.parent {
            assert!((p as usize) < i, "span {i} has forward parent {p}");
        }
    }
}

#[test]
fn sampled_task_returns_a_span_tree_and_unsampled_does_not() {
    let server = boot();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = client.add_query(".*x{ab}.*", b"ab").unwrap();
    client.add_doc(b"abababab").unwrap();

    client.set_tracing(true);
    let (count, _) = client.count(q, 0).unwrap();
    assert_eq!(count, 4);
    let spans = client
        .last_trace()
        .expect("sampled request returns a trace");
    let names = names(spans);
    for expected in ["admit", "cache_lookup", "task_exec"] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    // The first request built matrices; the repeat is a cache hit and
    // must not record a build span.
    assert!(names.contains(&"matrix_build"), "{names:?}");
    assert_well_parented(spans);
    let (count, _) = client.count(q, 0).unwrap();
    assert_eq!(count, 4);
    let spans = client.last_trace().unwrap();
    let repeat_names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(!repeat_names.contains(&"matrix_build"), "{spans:?}");

    // Unsampled again: the captured trace is dropped and none returns.
    client.set_tracing(false);
    assert!(client.last_trace().is_none());
    let (count, _) = client.count(q, 0).unwrap();
    assert_eq!(count, 4);
    assert!(client.last_trace().is_none());
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn enumeration_returns_the_trace_on_the_terminal_frame() {
    let server = boot();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = client.add_query(".*x{ab}.*", b"ab").unwrap();
    client.add_doc(b"abababab").unwrap();
    client.set_tracing(true);
    let (tuples, _) = client.enumerate(q, 0, 0, None, |_| {}).unwrap();
    assert_eq!(tuples.len(), 4);
    let spans = client.last_trace().expect("stream end carries the trace");
    let names = names(spans);
    for expected in ["admit", "cache_lookup", "enumerate_page"] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    assert_well_parented(spans);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn remote_sharded_builds_stitch_worker_fragments_into_the_tree() {
    let workers = [boot_worker(), boot_worker()];
    let executor = Arc::new(RemoteExecutor::new(
        workers.iter().map(|w| w.local_addr().to_string()),
    ));
    let service = Service::builder().shard_executor(executor.clone()).build();
    let server = Server::bind("127.0.0.1:0", service, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = client.add_query(".*x{a+}y{b+}.*", b"ab").unwrap();
    client.add_doc_sharded(&block_text(2048), 4).unwrap();
    client.set_tracing(true);
    let (count, _) = client.count(q, 0).unwrap();
    assert!(count > 0);
    let spans = client.last_trace().expect("sampled build returns a trace");
    assert_well_parented(spans);
    let rpcs: Vec<&SpanRec> = spans.iter().filter(|s| s.name == "shard_rpc").collect();
    assert_eq!(rpcs.len(), 4, "one scatter leg per shard: {spans:?}");
    for rpc in &rpcs {
        assert!(
            rpc.attrs.iter().any(|(k, _)| k == "worker"),
            "shard_rpc without worker attr: {rpc:?}"
        );
    }
    // Each leg carries the worker-recorded fragment: a `shard_pass` span
    // whose parent is a `shard_rpc` span, re-based into request time.
    let passes: Vec<&SpanRec> = spans.iter().filter(|s| s.name == "shard_pass").collect();
    assert_eq!(passes.len(), 4, "{spans:?}");
    for pass in &passes {
        let parent = pass.parent.expect("worker fragments are grafted") as usize;
        assert_eq!(spans[parent].name, "shard_rpc", "{spans:?}");
        assert!(
            pass.start_us >= spans[parent].start_us,
            "fragment not re-based: {pass:?} under {:?}",
            spans[parent]
        );
    }
    assert!(names(spans).contains(&"gather_products"), "{spans:?}");

    client.shutdown().unwrap();
    server.join();
    for worker in workers {
        let mut c = Client::connect(worker.local_addr()).unwrap();
        c.shutdown().unwrap();
        worker.join();
    }
}

#[test]
fn latency_histograms_observe_every_request_per_kind_and_tenant() {
    let server = boot();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = client.add_query(".*x{ab}.*", b"ab").unwrap();
    client.add_doc(b"abababab").unwrap();
    for _ in 0..3 {
        client.count(q, 0).unwrap();
    }
    client.non_empty(q, 0).unwrap();
    let obs = client
        .stats_full()
        .unwrap()
        .obs
        .expect("servers always export obs stats");
    // KIND_NAMES order: non_emptiness, model_check, count, compute, enumerate.
    assert_eq!(obs.kinds[0].count, 1, "{obs:?}");
    assert_eq!(obs.kinds[2].count, 3, "{obs:?}");
    assert_eq!(
        obs.kinds[1].count + obs.kinds[3].count + obs.kinds[4].count,
        0
    );
    let total: u64 = obs.kinds.iter().map(|h| h.count).sum();
    let by_tenant: u64 = obs.tenants.iter().map(|(_, h)| h.count).sum();
    assert_eq!(
        total, by_tenant,
        "every request lands in a tenant histogram"
    );
    assert_eq!(obs.tenants.len(), 1);
    assert_eq!(obs.tenants[0].0, 0);
    // p99 of a non-empty histogram is a real bucket bound.
    assert!(obs.kinds[2].percentile(0.99) >= 1);
    client.shutdown().unwrap();
    server.join();
}
