//! Tenant-isolation integration tests: quotas draw the structured `quota`
//! error (not `busy`), wire ids never resolve across tenant namespaces,
//! cache shares protect one tenant's matrices from another's flood, and a
//! pre-tenancy v2 client (no tenant field anywhere) keeps working.

use slp::NormalFormSlp;
use spanner::regex;
use spanner_server::{Client, ClientError, ErrorCode, Server, ServerConfig, TenantSpec};
use spanner_slp_core::service::{Service, Task, TaskRequest, TenantConfig, TenantId};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn boot() -> Server {
    Server::bind("127.0.0.1:0", Service::new(), ServerConfig::default()).expect("bind loopback")
}

fn spec(id: u32, max_docs: u64, max_bytes: u64) -> TenantSpec {
    TenantSpec {
        id,
        name: format!("tenant-{id}"),
        max_docs,
        max_corpus_bytes: max_bytes,
        cache_share: 0,
        admission_weight: 1,
    }
}

#[test]
fn quota_exhaustion_is_a_structured_error_not_busy() {
    let server = boot();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.tenant_create(spec(3, 1, 0)).unwrap();
    client.set_tenant(3);
    client.add_doc(b"abab").unwrap();

    let err = client.add_doc(b"abab").unwrap_err();
    match &err {
        ClientError::Server { code, detail } => {
            assert_eq!(*code, ErrorCode::Quota, "want quota, got [{code}] {detail}");
            assert!(detail.contains("quota"), "detail names the quota: {detail}");
        }
        other => panic!("expected a structured server error, got {other}"),
    }
    assert!(
        !err.is_busy(),
        "quota is an admission decision, not backpressure"
    );

    // Byte quotas too.
    client.tenant_create(spec(4, 0, 6)).unwrap();
    client.set_tenant(4);
    let err = client.add_doc(b"abababab").unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::Quota,
                ..
            }
        ),
        "byte quota draws the same structured error, got {err}"
    );

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn cross_tenant_ids_do_not_resolve() {
    let server = boot();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.tenant_create(spec(1, 0, 0)).unwrap();
    client.tenant_create(spec(2, 0, 0)).unwrap();
    let q = client.add_query(".*x{ab}.*", b"ab").unwrap();

    client.set_tenant(1);
    let doc = client.add_doc(b"abababab").unwrap();
    assert_eq!(doc.id, 0);

    // The same wire id from another tenant (or the default one) is
    // indistinguishable from an unknown id — for tasks *and* removal.
    for other in [2u32, 0u32] {
        client.set_tenant(other);
        let err = client.count(q, doc.id).unwrap_err();
        assert!(
            matches!(
                err,
                ClientError::Server {
                    code: ErrorCode::UnknownId,
                    ..
                }
            ),
            "tenant {other} must not resolve tenant 1's doc, got {err}"
        );
        let err = client.remove_doc(doc.id).unwrap_err();
        assert!(
            matches!(
                err,
                ClientError::Server {
                    code: ErrorCode::UnknownId,
                    ..
                }
            ),
            "tenant {other} must not remove tenant 1's doc, got {err}"
        );
    }

    // The owner still resolves it fine.
    client.set_tenant(1);
    let (count, _) = client.count(q, doc.id).unwrap();
    assert_eq!(count, 4);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn cache_shares_protect_a_tenant_from_another_tenants_flood() {
    // Service-level: a tight global budget, tenant 1 holding a reserved
    // share, tenant 2 flooding enumerations over many documents.  Tenant
    // 1's resident matrices must survive the flood.
    let service = Service::builder().cache_budget(256 * 1024).build();
    service.create_tenant(
        TenantId(1),
        TenantConfig {
            name: "protected".into(),
            cache_share: 128 * 1024,
            ..TenantConfig::default()
        },
    );
    service.create_tenant(
        TenantId(2),
        TenantConfig {
            name: "flood".into(),
            ..TenantConfig::default()
        },
    );
    let q = service.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
    let protected = service
        .add_document_for(
            TenantId(1),
            &NormalFormSlp::from_document(b"abababab").unwrap(),
        )
        .unwrap();

    // Warm tenant 1's matrices into the cache.
    service
        .run(&TaskRequest {
            query: q,
            doc: protected,
            task: Task::Count,
        })
        .unwrap();
    let resident_before = service.tenant_cache_resident(TenantId(1));
    assert!(resident_before > 0, "the warm-up must cache something");

    // Tenant 2 floods: many distinct documents, each needing fresh
    // matrices, far exceeding the global budget.
    for i in 0..40u32 {
        let text: Vec<u8> = (0..64)
            .map(|j| if (i + j) % 3 == 0 { b'a' } else { b'b' })
            .collect();
        let doc = service
            .add_document_for(TenantId(2), &NormalFormSlp::from_document(&text).unwrap())
            .unwrap();
        service
            .run(&TaskRequest {
                query: q,
                doc,
                task: Task::Enumerate {
                    skip: 0,
                    limit: Some(4),
                },
            })
            .unwrap();
    }

    assert_eq!(
        service.tenant_cache_resident(TenantId(1)),
        resident_before,
        "budget pressure from tenant 2 must not evict tenant 1 below its share"
    );
    // And the protected matrices actually serve a cache hit.
    let response = service
        .run(&TaskRequest {
            query: q,
            doc: protected,
            task: Task::Count,
        })
        .unwrap();
    assert!(
        response.stats.cache_hit,
        "the protected entry is still live"
    );
}

#[test]
fn v2_frames_without_tenant_fields_still_round_trip() {
    // A pre-tenancy v2 client: raw frames with no "t" key anywhere must
    // register, query and remove against the default tenant.
    let server = boot();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut call = |frame: &str| -> String {
        writer.write_all(frame.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };

    let reply = call(r#"{"v":2,"op":"add_query","pattern":".*x{ab}.*","alphabet":"ab"}"#);
    assert!(reply.contains("\"query\":0"), "got {reply}");
    let reply = call(r#"{"v":2,"op":"add_doc","text":"abababab"}"#);
    assert!(reply.contains("\"doc\":0"), "got {reply}");
    let reply = call(r#"{"v":2,"op":"task","task":"count","query":0,"doc":0}"#);
    assert!(reply.contains("\"count\":4"), "got {reply}");
    let reply = call(r#"{"v":2,"op":"remove_doc","doc":0}"#);
    assert!(reply.contains("\"removed\":0"), "got {reply}");

    // The doc registered above landed in the default tenant's namespace:
    // a tenant-aware client sees it there (id burned after removal).
    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client.count(0, 0).unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::UnknownId,
            ..
        }
    ));
    client.shutdown().unwrap();
    server.join();
}
