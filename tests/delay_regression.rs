//! CI regression gate for the enumeration-delay bounds (the E5/E8
//! measurements of EXPERIMENTS.md, turned into assertions): the paper's
//! Theorem 8.10 promises `O(depth(S)·|X|)` delay, i.e. `O(|X|·log d)` on
//! balanced grammars — so the maximum delay on the power families must grow
//! roughly like `log d`, *not* like `d`.  The factors are deliberately
//! generous (timing on shared CI hardware is noisy) but tight enough that
//! an accidental `O(d)` per-result walk fails loudly: between the two
//! document sizes below, `log d` grows ~2× while `d` grows 1024×.

use slp_spanner::prelude::*;
use slp_spanner::slp::{balance::rebalance, compress::Chain, families};
use spanner_bench::{measure_delays, DelayStats};
use std::time::Duration;

/// Runs `measure` a few times and keeps the smallest maximum delay — a
/// single scheduler hiccup must not decide the gate.
fn min_max_delay(mut measure: impl FnMut() -> DelayStats) -> Duration {
    (0..3).map(|_| measure().max_delay).min().unwrap()
}

/// E5 gate: max enumeration delay on the `(ab)^k` power family grows
/// ~`log d` — the large document (1024× longer, depth ~2×) may be slower
/// only by a generous constant, never by anything resembling `d`.
#[test]
fn e5_power_family_max_delay_grows_logarithmically() {
    let query = compile_query(".*x{ab}.*", b"ab").unwrap();
    let small = families::power_word(b"ab", 1 << 10);
    let large = families::power_word(b"ab", 1 << 18);
    assert!(large.depth() <= 2 * small.depth() + 4, "family is balanced");

    let draw = |doc: &NormalFormSlp<u8>| {
        let spanner = SlpSpanner::new(&query, doc).unwrap();
        min_max_delay(|| measure_delays(spanner.enumerate(), 400))
    };
    let small_max = draw(&small);
    let large_max = draw(&large);

    // log d grows ~1.8×; allow 32× (plus a 100µs floor against timer
    // noise).  An O(d) delay would be ~256× the small document's and fail.
    let bound = 32 * small_max.max(Duration::from_micros(100));
    assert!(
        large_max <= bound,
        "max delay regressed: {large_max:?} on d=2^19 vs {small_max:?} on d=2^11 \
         (bound {bound:?} — delay must grow ~log d, Theorem 8.10)"
    );
}

/// E8 gate: rebalancing caps the delay.  On a chain grammar the delay is
/// `O(d)`; after the AVL rebuild the depth — and with it the measured max
/// delay — must collapse to the logarithmic regime.
#[test]
fn e8_rebalanced_chain_meets_the_depth_and_delay_bounds() {
    // Chain grammars drive Θ(d)-deep descents; debug-build frames on the
    // 2 MiB default test-thread stack overflow, so measure on a roomier
    // thread (the release benches run the same workload on the main
    // thread).
    std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(e8_body)
        .unwrap()
        .join()
        .unwrap();
}

fn e8_body() {
    let query = compile_query(".*x{ab}.*", b"ab").unwrap();
    // Deep enough that chain delay is Θ(d) pain, shallow enough that the
    // per-result descent fits the debug-build stack.
    let doc: Vec<u8> = std::iter::repeat_n(b"ab".iter().copied(), 1 << 11)
        .flatten()
        .collect();
    let chain = Chain.compress(&doc);
    let balanced = rebalance(&chain);

    // Deterministic anchor: the AVL height bound (no timing involved).
    let d = doc.len() as f64;
    assert!(
        (balanced.depth() as f64) <= 1.45 * d.log2() + 2.0,
        "rebalanced depth {} exceeds the AVL bound for d={}",
        balanced.depth(),
        doc.len()
    );
    assert_eq!(chain.depth() as usize, doc.len());

    let draw = |slp: &NormalFormSlp<u8>| {
        let spanner = SlpSpanner::new(&query, slp).unwrap();
        min_max_delay(|| measure_delays(spanner.enumerate(), 200))
    };
    let chain_max = draw(&chain);
    let balanced_max = draw(&balanced);

    // The chain walks Θ(d)-deep paths per result; the balanced grammar
    // walks Θ(log d).  Demand a 4× gap — the real one is orders of
    // magnitude, so this only fails if balancing stops working.
    assert!(
        4 * balanced_max <= chain_max.max(Duration::from_micros(400)),
        "rebalancing no longer caps the delay: balanced {balanced_max:?} vs chain {chain_max:?}"
    );
}
