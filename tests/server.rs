//! Integration tests of the network serving front-end (`spanner-server`):
//! transport transparency against the in-process `Service`, concurrent
//! stress, framing robustness, admission backpressure and graceful
//! shutdown.

use slp::NormalFormSlp;
use spanner::regex;
use spanner_server::{retry_busy, Client, ClientError, ErrorCode, Server, ServerConfig};
use spanner_slp_core::service::{Service, Task, TaskOutcome, TaskRequest};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const PATTERNS: [&str; 2] = [".*x{ab}.*", ".*x{a+}y{b+}.*"];
const TEXTS: [&[u8]; 3] = [b"abababab", b"aabbaabbab", b"babaabab"];

/// Boots a loopback server over a fresh service.
fn boot(config: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", Service::new(), config).expect("bind loopback")
}

/// A reference service with the same corpus as the test server, registered
/// via the same compression path (`NormalFormSlp::from_document`).
fn reference() -> (
    Service,
    Vec<spanner_slp_core::QueryId>,
    Vec<spanner_slp_core::DocumentId>,
) {
    let service = Service::new();
    let qids = PATTERNS
        .iter()
        .map(|p| service.add_query(&regex::compile(p, b"ab").unwrap()))
        .collect();
    let dids = TEXTS
        .iter()
        .map(|t| service.add_document(&NormalFormSlp::from_document(t).unwrap()))
        .collect();
    (service, qids, dids)
}

/// Registers the shared corpus through the wire.
fn register(client: &mut Client) -> (Vec<u64>, Vec<u64>) {
    let qids = PATTERNS
        .iter()
        .map(|p| client.add_query(p, b"ab").expect("add_query"))
        .collect();
    let dids = TEXTS
        .iter()
        .map(|t| client.add_doc(t).expect("add_doc").id)
        .collect();
    (qids, dids)
}

#[test]
fn every_task_is_transport_transparent() {
    // The acceptance criterion: for every task variant, the payload through
    // the server is identical to the direct `Service::run` result.
    let server = boot(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let (qids, dids) = register(&mut client);
    let (reference, ref_q, ref_d) = reference();

    for (qi, &q) in qids.iter().enumerate() {
        for (di, &d) in dids.iter().enumerate() {
            let direct = |task: Task| {
                reference
                    .run(&TaskRequest {
                        query: ref_q[qi],
                        doc: ref_d[di],
                        task,
                    })
                    .unwrap()
                    .outcome
            };

            // Non-emptiness.
            let (non_empty, _) = client.non_empty(q, d).unwrap();
            assert_eq!(TaskOutcome::NonEmpty(non_empty), direct(Task::NonEmptiness));

            // Count.
            let (count, _) = client.count(q, d).unwrap();
            assert_eq!(TaskOutcome::Count(count), direct(Task::Count));

            // Compute, unlimited and limited.
            for limit in [None, Some(3u64)] {
                let (tuples, _) = client.compute(q, d, limit).unwrap();
                assert_eq!(
                    TaskOutcome::Tuples(tuples),
                    direct(Task::Compute {
                        limit: limit.map(|n| n as usize),
                    })
                );
            }

            // Enumerate: windowed, as a page stream.
            let (streamed, _) = client.enumerate(q, d, 1, Some(5), |_| {}).unwrap();
            assert_eq!(
                TaskOutcome::Tuples(streamed),
                direct(Task::Enumerate {
                    skip: 1,
                    limit: Some(5),
                })
            );

            // Model check: a computed tuple verifies, a bogus span does not
            // — and both verdicts agree with the direct path.
            let (all, _) = client.compute(q, d, None).unwrap();
            for tuple in all.iter().take(2) {
                let (checked, _) = client.model_check(q, d, tuple).unwrap();
                assert_eq!(
                    TaskOutcome::Checked(checked),
                    direct(Task::ModelCheck(tuple.clone()))
                );
                assert!(checked);
            }
        }
    }
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn sixteen_concurrent_clients_get_identical_results() {
    let server = boot(ServerConfig {
        // Small enough that 16 clients provoke real backpressure, large
        // enough to make progress.
        max_inflight: 4,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).unwrap();
    let (qids, dids) = register(&mut admin);
    let (reference, ref_q, ref_d) = reference();

    // Expected payloads, precomputed directly.
    let expected_counts: Vec<Vec<u128>> = ref_q
        .iter()
        .map(|&q| {
            ref_d
                .iter()
                .map(|&d| {
                    reference
                        .run(&TaskRequest {
                            query: q,
                            doc: d,
                            task: Task::Count,
                        })
                        .unwrap()
                        .outcome
                        .as_count()
                        .unwrap()
                })
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..16 {
            let (qids, dids, expected_counts) = (&qids, &dids, &expected_counts);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..6 {
                    let qi = (worker + round) % qids.len();
                    let di = (worker * 7 + round) % dids.len();
                    let (count, _) = retry_busy(10_000, Duration::from_micros(200), || {
                        client.count(qids[qi], dids[di])
                    })
                    .expect("count under load");
                    assert_eq!(
                        count, expected_counts[qi][di],
                        "worker {worker} round {round}"
                    );
                    let (tuples, _) = retry_busy(10_000, Duration::from_micros(200), || {
                        client.enumerate(qids[qi], dids[di], 0, Some(4), |_| {})
                    })
                    .expect("enumerate under load");
                    assert!(tuples.len() <= 4);
                }
            });
        }
    });

    // Overload is answered with structured busy errors, never drops: every
    // connection above completed all its rounds.
    let (_, server_stats) = admin.stats().unwrap();
    assert_eq!(server_stats.connections, 17);
    admin.shutdown().unwrap();
    server.join();
}

#[test]
fn malformed_frames_draw_errors_and_keep_the_connection() {
    let server = boot(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut reply = String::new();

    // Garbage, valid JSON with an unknown op, and a version mismatch.
    for (frame, code) in [
        ("this is not json\n", "malformed"),
        ("{\"v\":1,\"op\":\"frobnicate\"}\n", "malformed"),
        ("{\"v\":99,\"op\":\"ping\"}\n", "version"),
    ] {
        raw.write_all(frame.as_bytes()).unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.contains(&format!("\"error\":\"{code}\"")),
            "frame {frame:?} drew {reply:?}"
        );
    }

    // The connection is still perfectly usable.
    raw.write_all(b"{\"v\":1,\"op\":\"ping\"}\n").unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"proto\":3"), "{reply:?}");
    server.shutdown_and_join();
}

#[test]
fn oversized_frames_are_discarded_not_buffered() {
    let server = boot(ServerConfig {
        max_frame_len: 256,
        ..ServerConfig::default()
    });
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());

    // A line way beyond the cap (sent in chunks, like a real client would).
    let huge = vec![b'x'; 64 * 1024];
    raw.write_all(&huge).unwrap();
    raw.write_all(b"\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"error\":\"oversized\""), "{reply:?}");

    // The next (valid) frame on the same connection works.
    raw.write_all(b"{\"v\":1,\"op\":\"ping\"}\n").unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"proto\":3"), "{reply:?}");

    // An over-cap line whose newline arrives in the SAME write (and so,
    // very likely, the same server-side read chunk) must be rejected too —
    // the cap is on the frame, not on how it happened to be chunked.
    let mut sneaky = vec![b'y'; 1024];
    sneaky.push(b'\n');
    raw.write_all(&sneaky).unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"error\":\"oversized\""), "{reply:?}");
    raw.write_all(b"{\"v\":1,\"op\":\"ping\"}\n").unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"proto\":3"), "{reply:?}");
    server.shutdown_and_join();
}

#[test]
fn a_stalled_reader_cannot_wedge_the_drain() {
    // A client starts a large enumeration stream and never reads a byte:
    // the worker eventually blocks filling the TCP send buffer.  With a
    // write timeout the drain still completes instead of joining that
    // worker forever.
    let server = boot(ServerConfig {
        page_size: 64,
        write_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).unwrap();
    let q = admin.add_query(PATTERNS[0], b"ab").unwrap();
    let d = admin.add_doc(&b"ab".repeat(20_000)).unwrap().id;

    // Raw socket: fire the enumerate request, then go silent.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled
        .write_all(
            format!("{{\"v\":1,\"op\":\"task\",\"task\":\"enumerate\",\"query\":{q},\"doc\":{d},\"skip\":0,\"limit\":null}}\n")
                .as_bytes(),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the stream start

    let start = std::time::Instant::now();
    admin.shutdown().unwrap();
    server.join();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "drain took {:?} — a stalled reader wedged it",
        start.elapsed()
    );
    drop(stalled);
}

#[test]
fn overload_backpressure_is_structured_busy_not_a_drop() {
    // max_inflight = 0: every work request is over the cap, deterministic.
    let server = boot(ServerConfig {
        max_inflight: 0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();

    let err = client.add_query(PATTERNS[0], b"ab").unwrap_err();
    match &err {
        ClientError::Server { code, detail } => {
            assert_eq!(*code, ErrorCode::Busy);
            assert!(detail.contains("in flight"), "{detail}");
        }
        other => panic!("expected structured busy, got {other:?}"),
    }
    assert!(err.is_busy());

    // The connection survives; observability stays admitted.
    assert_eq!(client.ping().unwrap(), 3);
    let (_, server_stats) = client.stats().unwrap();
    assert_eq!(server_stats.busy_rejections, 1);
    server.shutdown_and_join();
}

#[test]
fn streamed_enumeration_pages_match_and_flush_incrementally() {
    let server = boot(ServerConfig {
        page_size: 8,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = client.add_query(PATTERNS[0], b"ab").unwrap();
    let text: Vec<u8> = b"ab".repeat(100);
    let d = client.add_doc(&text).unwrap().id;

    let mut pages = Vec::new();
    let (tuples, stats) = client
        .enumerate(q, d, 0, None, |page| pages.push(page.len()))
        .unwrap();
    assert_eq!(tuples.len(), 100);
    assert_eq!(stats.results, 100);
    // 100 results in pages of 8: 12 full pages + one of 4, each flushed
    // separately.
    assert_eq!(pages.len(), 13);
    assert!(pages[..12].iter().all(|&n| n == 8));
    assert_eq!(pages[12], 4);

    // Payload equality with the direct path.
    let service = Service::new();
    let rq = service.add_query(&regex::compile(PATTERNS[0], b"ab").unwrap());
    let rd = service.add_document(&NormalFormSlp::from_document(&text).unwrap());
    let direct = service
        .run(&TaskRequest {
            query: rq,
            doc: rd,
            task: Task::Enumerate {
                skip: 0,
                limit: None,
            },
        })
        .unwrap();
    assert_eq!(direct.outcome.into_tuples().unwrap(), tuples);
    server.shutdown_and_join();
}

#[test]
fn auto_sharded_documents_serve_identically() {
    let server = boot(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = client.add_query(PATTERNS[0], b"ab").unwrap();

    // Tiny document: the auto policy keeps it monolithic (k = 0 = auto).
    let tiny = client.add_doc_sharded(b"abababab", 0).unwrap();
    assert_eq!(tiny.shards, 1);
    let (count, _) = client.count(q, tiny.id).unwrap();
    assert_eq!(count, 4);

    // Explicit shard counts round the answer through the scatter-gather
    // path; payloads stay identical.
    let text: Vec<u8> = b"ab".repeat(500);
    let mono = client.add_doc(&text).unwrap();
    let sharded = client.add_doc_sharded(&text, 4).unwrap();
    assert_eq!(sharded.shards, 4);
    let (mono_tuples, _) = client.compute(q, mono.id, None).unwrap();
    let (sharded_tuples, _) = client.compute(q, sharded.id, None).unwrap();
    assert_eq!(mono_tuples, sharded_tuples);
    server.shutdown_and_join();
}

#[test]
fn graceful_shutdown_drains_and_refuses_new_work() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();
    let mut worker = Client::connect(addr).unwrap();
    let (qids, dids) = register(&mut worker);
    // A request completes fully before the drain begins…
    let (count_before, _) = worker.count(qids[0], dids[0]).unwrap();

    // …then a second connection asks for shutdown.
    let mut terminator = Client::connect(addr).unwrap();
    terminator.shutdown().unwrap();

    // New work on the surviving connection is refused in a structured way
    // (or the drain already closed the socket — both are clean outcomes,
    // never a mid-response cut).
    match worker.count(qids[0], dids[1]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        Err(ClientError::Protocol(_) | ClientError::Io(_)) => {}
        Ok(_) => panic!("work admitted after shutdown"),
    }

    // The drain completes; the port is closed afterwards.
    server.join();
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT race can let one connect through; it must be dead.
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let mut buf = [0u8; 1];
            stream.write_all(b"{\"v\":1,\"op\":\"ping\"}\n").is_err()
                || matches!(stream.read(&mut buf), Ok(0) | Err(_))
        }
    );
    assert_eq!(count_before, 4);
}

#[test]
fn remove_doc_burns_the_id_and_clears_the_cache() {
    let server = boot(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = client.add_query(PATTERNS[0], b"ab").unwrap();
    let d1 = client.add_doc(TEXTS[0]).unwrap().id;
    let d2 = client.add_doc(TEXTS[1]).unwrap().id;
    client.count(q, d1).unwrap();
    client.count(q, d2).unwrap();
    let (service_stats, _) = client.stats().unwrap();
    assert_eq!(service_stats.resident_entries, 2);

    client.remove_doc(d1).unwrap();

    // The cached matrices of d1 are gone; d2's stay resident and warm.
    let (service_stats, _) = client.stats().unwrap();
    assert_eq!(service_stats.resident_entries, 1);
    let (_, stats) = client.count(q, d2).unwrap();
    assert!(stats.cache_hit, "the surviving document stays warm");

    // The id is burned: tasks and a second removal both draw unknown_id.
    for err in [
        client.count(q, d1).unwrap_err(),
        client.remove_doc(d1).unwrap_err(),
    ] {
        match err {
            ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownId),
            other => panic!("expected unknown_id, got {other:?}"),
        }
    }

    // New registrations get fresh ids, never the burned one.
    let d3 = client.add_doc(TEXTS[2]).unwrap().id;
    assert_eq!(d3, 2);
    client.count(q, d3).unwrap();
    server.shutdown_and_join();
}

#[test]
fn worker_mode_refuses_corpus_verbs_but_stays_observable() {
    let server = boot(ServerConfig {
        worker: true,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Observability is untouched.
    assert_eq!(client.ping().unwrap(), 3);
    client.stats().unwrap();
    // Registrations and tasks draw the structured `unsupported` error and
    // the connection survives each refusal.
    let refusals = [
        client.add_query(PATTERNS[0], b"ab").unwrap_err(),
        client.add_doc(TEXTS[0]).unwrap_err(),
        client.count(0, 0).unwrap_err(),
        client.remove_doc(0).unwrap_err(),
    ];
    for err in refusals {
        match err {
            ClientError::Server { code, detail } => {
                assert_eq!(code, ErrorCode::Unsupported);
                assert!(detail.contains("worker"), "{detail}");
            }
            other => panic!("expected unsupported, got {other:?}"),
        }
    }
    assert_eq!(client.ping().unwrap(), 3);
    server.shutdown_and_join();
}

#[test]
fn wire_ids_are_validated_not_panicked_on() {
    let server = boot(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client.count(7, 9).unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownId),
        other => panic!("expected unknown_id, got {other:?}"),
    }
    // The server survived to tell the tale.
    assert_eq!(client.ping().unwrap(), 3);
    server.shutdown_and_join();
}

#[test]
fn empty_documents_are_eval_errors() {
    let server = boot(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client.add_doc(b"").unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Eval),
        other => panic!("expected eval error, got {other:?}"),
    }
    let err = client.add_query("(((", b"ab").unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Eval),
        other => panic!("expected eval error, got {other:?}"),
    }
    server.shutdown_and_join();
}
