//! Distributed shard execution: a `RemoteExecutor` pool over
//! `spanner-server --worker` processes must produce matrices
//! entry-identical to the serial build, ship only summary-sized payloads
//! (never the full matrices or the document text), and degrade to local
//! execution — never losing a result — when workers die mid-build or
//! answer garbage.

use slp_spanner::eval::matrices::Preprocessed;
use slp_spanner::prelude::*;
use slp_spanner::slp::families;
use spanner_server::{RemoteExecutor, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

fn boot_worker() -> Server {
    Server::bind(
        "127.0.0.1:0",
        Service::new(),
        ServerConfig {
            worker: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind worker")
}

/// A deterministic low-repetitiveness document whose shards partition the
/// grammar (the regime where distribution pays).
fn block_document(len: usize) -> NormalFormSlp<u8> {
    let mut state = 0x9E37_79B9u64;
    let text: Vec<u8> = (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b'a' + ((state >> 33) % 2) as u8
        })
        .collect();
    NormalFormSlp::from_document(&text).unwrap()
}

fn documents() -> Vec<NormalFormSlp<u8>> {
    vec![
        slp_spanner::slp::examples::example_4_2(),
        Bisection.compress(b"aabbaabbab"),
        block_document(2048),
    ]
}

/// The acceptance criterion: for k ∈ {2, 4, 8} on the paper examples and a
/// block-family document, a 2-worker `RemoteExecutor` build produces a
/// `Preprocessed` entry-identical to `build_serial`, with every shard pass
/// actually running remotely (no fallbacks).
#[test]
fn two_worker_remote_builds_are_entry_identical_to_serial() {
    let workers = [boot_worker(), boot_worker()];
    let executor = Arc::new(RemoteExecutor::new(
        workers.iter().map(|w| w.local_addr().to_string()),
    ));
    let queries = [
        compile_query(".*x{a+}y{b+}.*", b"ab").unwrap(),
        slp_spanner::spanner::examples::figure_2_spanner(),
    ];
    for query in &queries {
        for doc in &documents() {
            let reference = SlpSpanner::new(query, doc).unwrap();
            for k in [2usize, 4, 8] {
                let service = Service::builder().shard_executor(executor.clone()).build();
                let q = service.add_query(query);
                let d = service.add_document_sharded(doc, k);
                let response = service
                    .run(&TaskRequest {
                        query: q,
                        doc: d,
                        task: Task::Count,
                    })
                    .unwrap();
                assert_eq!(
                    response.outcome.as_count(),
                    Some(reference.count()),
                    "k={k}"
                );
                let stats = response.shard_stats.expect("cold sharded build");
                assert_eq!(stats.fallbacks, 0, "k={k}: every pass ran remotely");
                assert_eq!(stats.k(), service.document(d).shard_count());

                // Entry-identical matrices: every R row and every leaf
                // table equals the serial build's.
                let prepared_query = service.query(q);
                let document = service.document(d);
                let via_remote = document
                    .cached_matrices(&prepared_query)
                    .expect("the build is resident");
                let serial = Preprocessed::build_serial(
                    prepared_query.nfa(),
                    document.ended(),
                    prepared_query.num_vars(),
                );
                assert_eq!(via_remote.r, serial.r, "k={k}");
                assert_eq!(via_remote.leaf_tables, serial.leaf_tables, "k={k}");
            }
        }
    }
    assert!(executor.remote_pass_count() > 0);
    assert_eq!(executor.fallback_count(), 0);
    for worker in workers {
        worker.shutdown_and_join();
    }
}

/// The wire-cost criterion: the gather leg carries only three-valued
/// summaries (packed bitplanes, 2 bits per entry — never the marker-set
/// matrices), and the scatter leg carries the compressed shard blocks —
/// never the document text.
#[test]
fn gather_is_summary_sized_and_scatter_never_ships_the_document() {
    let worker = boot_worker();
    let executor = Arc::new(RemoteExecutor::new([worker.local_addr().to_string()]));
    let service = Service::builder().shard_executor(executor.clone()).build();
    let q = service.add_query(&compile_query(".*x{ab}.*", b"ab").unwrap());
    // Highly compressible: 65536 text bytes, a few dozen grammar rules.
    let doc = families::power_word(b"ab", 1 << 15);
    let k = 4usize;
    let d = service.add_document_sharded(&doc, k);
    let response = service
        .run(&TaskRequest {
            query: q,
            doc: d,
            task: Task::Count,
        })
        .unwrap();
    assert_eq!(response.outcome.as_count(), Some(1 << 15));
    assert_eq!(executor.fallback_count(), 0);

    let prepared_query = service.query(q);
    let document = service.document(d);
    let q_states = prepared_query.nfa().num_states();
    let block_rules: usize = document
        .shard_layout()
        .expect("sharded")
        .ranges
        .iter()
        .map(|r| r.len())
        .sum();

    // Gather: two bitplanes per rule (2 bits per summary entry, base64 on
    // the wire) plus bounded framing — independent of how large the
    // marker-set matrices are, and ~3× below the one-byte-per-entry
    // payload bound the v1 wire format needed.
    let gather = executor.gather_bytes() as usize;
    assert!(gather > 0);
    let plane_bytes = (q_states * q_states).div_ceil(8);
    let packed_payload = (block_rules * 2 * plane_bytes).div_ceil(3) * 4;
    assert!(
        gather <= packed_payload + 160 * k,
        "gather {gather} bytes exceeds the packed-plane payload bound \
         ({block_rules} rules × 2 planes × {plane_bytes} B, base64)"
    );
    assert!(
        gather < block_rules * q_states * q_states + 160 * k,
        "gather {gather} bytes should undercut the legacy one-byte-per-entry \
         bound ({block_rules} rules × {q_states}²)"
    );
    let resident = document
        .cached_matrices(&prepared_query)
        .unwrap()
        .approx_bytes();
    assert!(
        gather < resident,
        "gather {gather} must be smaller than the {resident}-byte matrices it stands for"
    );

    // Scatter: the serialized sub-grammars, a tiny fraction of the text a
    // monolithic document shipment would move.
    let scatter = executor.scatter_bytes();
    assert!(scatter > 0);
    assert!(
        scatter < doc.document_len() / 4,
        "scatter {scatter} bytes is not 'compressed': the document is {} bytes",
        doc.document_len()
    );
    worker.shutdown_and_join();
}

/// What a broken "worker" does with each accepted connection.
#[derive(Clone, Copy)]
enum Sabotage {
    /// Read the request, then die without answering (a worker killed
    /// mid-build).
    DieMidBuild,
    /// Answer with a frame that is not protocol at all.
    Garbage,
}

/// Boots a fake worker that sabotages every exchange.  Serves a bounded
/// number of connections on a background thread.
fn broken_worker(mode: Sabotage) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming().take(64).flatten() {
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = Vec::new();
            let _ = reader.read_until(b'\n', &mut line);
            match mode {
                Sabotage::DieMidBuild => drop(stream),
                Sabotage::Garbage => {
                    let mut stream = stream;
                    let _ = stream.write_all(b"this is not protocol\n");
                    let _ = stream.flush();
                }
            }
        }
    });
    addr
}

/// The fault-path criterion: a worker killed mid-build and a worker
/// returning malformed frames both fall back to `LocalExecutor` with an
/// entry-identical `Preprocessed` and a recorded fallback count.
#[test]
fn worker_failures_fall_back_to_local_with_identical_matrices() {
    let query = compile_query(".*x{a+}y{b+}.*", b"ab").unwrap();
    let doc = block_document(1024);
    let reference = SlpSpanner::new(&query, &doc).unwrap();
    for mode in [Sabotage::DieMidBuild, Sabotage::Garbage] {
        let addr = broken_worker(mode);
        let executor =
            Arc::new(RemoteExecutor::new([addr.to_string()]).with_timeout(Duration::from_secs(2)));
        let service = Service::builder().shard_executor(executor.clone()).build();
        let q = service.add_query(&query);
        let k = 4usize;
        let d = service.add_document_sharded(&doc, k);
        let response = service
            .run(&TaskRequest {
                query: q,
                doc: d,
                task: Task::Count,
            })
            .unwrap();
        // The result is never lost...
        assert_eq!(response.outcome.as_count(), Some(reference.count()));
        // ...the fallbacks are recorded per build and on the executor...
        let stats = response.shard_stats.expect("cold sharded build");
        assert_eq!(stats.fallbacks, k, "every shard fell back");
        assert_eq!(executor.fallback_count(), k as u64);
        assert_eq!(executor.remote_pass_count(), 0);
        // ...and the matrices are entry-identical to the serial build.
        let prepared_query = service.query(q);
        let document = service.document(d);
        let via_fallback = document.cached_matrices(&prepared_query).unwrap();
        let serial = Preprocessed::build_serial(
            prepared_query.nfa(),
            document.ended(),
            prepared_query.num_vars(),
        );
        assert_eq!(via_fallback.r, serial.r);
        assert_eq!(via_fallback.leaf_tables, serial.leaf_tables);
    }
}

/// Shard blocks larger than the configured worker frame cap never touch
/// the wire: the build falls back locally up front instead of shipping a
/// frame every worker would refuse as oversized.
#[test]
fn over_cap_shard_blocks_run_locally_without_shipping() {
    let worker = boot_worker();
    let executor =
        Arc::new(RemoteExecutor::new([worker.local_addr().to_string()]).with_max_frame(256));
    let service = Service::builder().shard_executor(executor.clone()).build();
    let q = service.add_query(&compile_query(".*x{ab}.*", b"ab").unwrap());
    let d = service.add_document_sharded(&block_document(2048), 2);
    let response = service
        .run(&TaskRequest {
            query: q,
            doc: d,
            task: Task::Count,
        })
        .unwrap();
    assert!(response.outcome.as_count().is_some());
    assert_eq!(response.shard_stats.unwrap().fallbacks, 2);
    assert_eq!(executor.scatter_bytes(), 0, "nothing was shipped");
    assert_eq!(executor.remote_pass_count(), 0);
    worker.shutdown_and_join();
}

/// A pool whose workers are simply gone (connection refused) degrades the
/// same way — and keeps serving every later request locally.
#[test]
fn a_dead_pool_degrades_to_local_execution() {
    // Bind-then-drop: the port is (almost certainly) unbound afterwards.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let executor = Arc::new(
        RemoteExecutor::new([dead_addr.to_string()]).with_timeout(Duration::from_millis(500)),
    );
    let service = Service::builder().shard_executor(executor.clone()).build();
    let q = service.add_query(&compile_query(".*x{ab}.*", b"ab").unwrap());
    let d = service.add_document_sharded(&families::power_word(b"ab", 256), 2);
    for round in 0..2 {
        let response = service
            .run(&TaskRequest {
                query: q,
                doc: d,
                task: Task::Count,
            })
            .unwrap();
        assert_eq!(response.outcome.as_count(), Some(256), "round {round}");
    }
    // The power word's two shard blocks are content-identical, so the
    // dedupe pass collapses them to one executed pass — at least that one
    // fell back (the duplicate inherits the flag in per-build stats).
    assert!(
        executor.fallback_count() >= 1,
        "cold build fell back per executed shard"
    );
    assert_eq!(executor.remote_pass_count(), 0);
}
