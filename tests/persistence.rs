//! Crash-recovery integration tests of the durable server: a restart on
//! the same data directory must reconstruct the corpus bit-identically —
//! same answers for all five task kinds, same wire ids (including burned
//! ones), same shard layouts, and **zero** `auto_k` re-probing.

use spanner_server::{
    Client, ClientError, ErrorCode, PersistenceOptions, Server, ServerConfig, ServerOptions,
    TenantSpec,
};
use spanner_slp_core::Service;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("spanner-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn boot_durable(dir: &TempDir, snapshot_every: u64) -> Server {
    boot_durable_sized(dir, snapshot_every, 0)
}

fn boot_durable_sized(dir: &TempDir, snapshot_every: u64, snapshot_bytes: u64) -> Server {
    let options = ServerOptions {
        persistence: Some(PersistenceOptions {
            dir: dir.0.clone(),
            snapshot_every,
            snapshot_bytes,
        }),
        ..ServerOptions::from(ServerConfig::default())
    };
    Server::bind_with("127.0.0.1:0", Service::new(), options).expect("bind durable loopback")
}

/// All five task kinds on one pooled pair, as comparable values.
fn answers(client: &mut Client, q: u64, d: u64) -> (bool, bool, u128, usize, Vec<String>) {
    let (non_empty, _) = client.non_empty(q, d).unwrap();
    let (count, _) = client.count(q, d).unwrap();
    let (computed, _) = client.compute(q, d, None).unwrap();
    let (enumerated, _) = client.enumerate(q, d, 0, None, |_| {}).unwrap();
    let checked = computed
        .first()
        .map(|t| client.model_check(q, d, t).unwrap().0)
        .unwrap_or(false);
    (
        non_empty,
        checked,
        count,
        computed.len(),
        enumerated.iter().map(|t| format!("{t:?}")).collect(),
    )
}

#[test]
fn restart_round_trip_is_bit_identical() {
    let dir = TempDir::new("roundtrip");
    let texts: [&[u8]; 3] = [b"abababab", b"aabbaabbab", b"babaabab"];

    // Session one: a mixed corpus — monolithic, explicitly sharded,
    // auto-tuned — plus a removal (its wire id must stay burned), and a
    // non-default tenant with its own namespace.
    let before = {
        let server = boot_durable(&dir, 0);
        let mut client = Client::connect(server.local_addr()).unwrap();
        client
            .tenant_create(TenantSpec {
                id: 7,
                name: "acme".into(),
                max_docs: 10,
                max_corpus_bytes: 1 << 20,
                cache_share: 0,
                admission_weight: 2,
            })
            .unwrap();
        let q = client.add_query(".*x{ab}.*", b"ab").unwrap();
        let d0 = client.add_doc(texts[0]).unwrap();
        let d1 = client.add_doc_sharded(texts[1], 3).unwrap();
        let d2 = client.add_doc_sharded(texts[2], 0).unwrap(); // auto-tuned
        let doomed = client.add_doc(b"abab").unwrap();
        client.remove_doc(doomed.id).unwrap();
        client.set_tenant(7);
        let t0 = client.add_doc(texts[0]).unwrap();
        client.set_tenant(0);

        let snapshot: Vec<_> = [d0.id, d1.id, d2.id]
            .iter()
            .map(|&d| answers(&mut client, q, d))
            .collect();
        client.set_tenant(7);
        let tenant_answers = answers(&mut client, q, t0.id);
        client.set_tenant(0);
        client.shutdown().unwrap();
        server.join();
        (
            q,
            [d0.id, d1.id, d2.id, doomed.id],
            t0.id,
            snapshot,
            tenant_answers,
        )
    };
    let (q_wire, doc_ids, tenant_doc, snapshot, tenant_answers) = before;

    // Session two: a fresh service replayed from the store.
    let server = boot_durable(&dir, 0);
    let report = *server.recovery().expect("durable boot reports recovery");
    assert_eq!(report.documents, 4, "3 default-tenant docs + 1 tenant doc");
    assert_eq!(report.tenants, 1, "the non-default tenant came back");
    assert_eq!(
        server.service().auto_probe_count(),
        0,
        "replay must register recorded shard counts, never re-probe"
    );

    let mut client = Client::connect(server.local_addr()).unwrap();
    // Queries are ephemeral (not corpus verbs) — re-register the same one.
    let q = client.add_query(".*x{ab}.*", b"ab").unwrap();
    assert_eq!(q, q_wire);

    for (i, &d) in doc_ids[..3].iter().enumerate() {
        assert_eq!(answers(&mut client, q, d), snapshot[i]);
    }
    // The removed document's wire id stays burned.
    let err = client.count(q, doc_ids[3]).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::UnknownId,
                ..
            }
        ),
        "burned id must stay burned, got {err}"
    );
    // The tenant's namespace (and its answers) came back too.
    client.set_tenant(7);
    assert_eq!(answers(&mut client, q, tenant_doc), tenant_answers);
    client.set_tenant(0);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn snapshots_compose_with_the_log_tail() {
    let dir = TempDir::new("snapshot");
    {
        let server = boot_durable(&dir, 2); // snapshot every 2 verbs
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.add_doc(b"abababab").unwrap();
        client.add_doc(b"aabb").unwrap(); // triggers a snapshot
        client.add_doc(b"babaab").unwrap(); // lands in the fresh log tail
        client.shutdown().unwrap();
        server.join();
    }
    let server = boot_durable(&dir, 2);
    let report = *server.recovery().unwrap();
    assert!(report.from_snapshot, "the cut snapshot must be used");
    assert_eq!(report.documents, 3, "snapshot image + log tail compose");

    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = client.add_query(".*x{ab}.*", b"ab").unwrap();
    let (count, _) = client.count(q, 0).unwrap();
    assert_eq!(count, 4);
    let (count, _) = client.count(q, 2).unwrap();
    assert_eq!(count, 2);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn log_size_triggers_snapshots_and_attributes_them() {
    let dir = TempDir::new("sizetrigger");
    {
        // Cadence off; any non-empty log (≥ 1 byte) trips the size trigger.
        // Size-triggered compactions run on a background thread (single-
        // flight), so poll until at least one lands rather than counting
        // them exactly.
        let server = boot_durable_sized(&dir, 0, 1);
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.add_doc(b"abababab").unwrap();
        client.add_doc(b"aabb").unwrap();
        client.add_doc(b"babaab").unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let store = loop {
            let stats = client.stats_full().unwrap();
            let store = stats.store.expect("durable server exports store stats");
            if store.snapshots_on_size >= 1 || std::time::Instant::now() >= deadline {
                break store;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        assert!(
            store.snapshots_on_size >= 1,
            "the size trigger compacts in the background: {store:?}"
        );
        assert!(store.snapshots >= 1, "the store cut at least one snapshot");
        assert_eq!(store.snapshots_on_cadence, 0, "cadence is off");
        client.shutdown().unwrap();
        server.join();
    }
    // The size-triggered snapshots compose with recovery like cadence ones.
    let server = boot_durable_sized(&dir, 0, 1);
    let report = *server.recovery().unwrap();
    assert!(report.from_snapshot);
    assert_eq!(report.documents, 3);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = client.add_query(".*x{ab}.*", b"ab").unwrap();
    let (count, _) = client.count(q, 0).unwrap();
    assert_eq!(count, 4);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn cadence_wins_attribution_when_both_triggers_fire() {
    let dir = TempDir::new("bothtriggers");
    let server = boot_durable_sized(&dir, 1, 1); // both trip on every verb
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.add_doc(b"abab").unwrap();
    client.add_doc(b"baba").unwrap();
    let stats = client.stats_full().unwrap();
    let store = stats.store.expect("durable server exports store stats");
    assert_eq!(store.snapshots, 2);
    assert_eq!(store.snapshots_on_cadence, 2, "cadence takes attribution");
    assert_eq!(store.snapshots_on_size, 0);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn shard_layouts_survive_restart() {
    let dir = TempDir::new("layout");
    let text = b"abababababababababababababababab";
    let k = {
        let server = boot_durable(&dir, 0);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let receipt = client.add_doc_sharded(text, 4).unwrap();
        assert_eq!(receipt.shards, 4);
        client.shutdown().unwrap();
        server.join();
        receipt.shards
    };
    let server = boot_durable(&dir, 0);
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Re-adding the same text must mint a *new* id (1) — proving id 0 is
    // still occupied by the replayed registration — with the same layout
    // available for comparison.
    let again = client.add_doc_sharded(text, 4).unwrap();
    assert_eq!(again.id, 1);
    assert_eq!(again.shards, k);
    let q = client.add_query(".*x{ab}.*", b"ab").unwrap();
    let (a, _) = client.count(q, 0).unwrap();
    let (b, _) = client.count(q, 1).unwrap();
    assert_eq!(a, b, "replayed layout answers like a fresh registration");
    client.shutdown().unwrap();
    server.join();
}
