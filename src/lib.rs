//! # slp-spanner — regular spanner evaluation over SLP-compressed documents
//!
//! A Rust implementation of the PODS 2021 paper *"Spanner Evaluation over
//! SLP-Compressed Documents"* by Markus L. Schmid and Nicole Schweikardt,
//! together with every substrate it depends on: straight-line programs and
//! grammar compressors, finite automata over spanner alphabets, the document
//! spanner formalism, the classical uncompressed baselines and a benchmark
//! suite.  See `README.md` for a tour and `DESIGN.md` for the system
//! inventory and experiment index.
//!
//! This facade crate re-exports the individual workspace crates under short
//! names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`slp`] | `slp` | SLPs, compressors, balancing, random access |
//! | [`automata`] | `spanner-automata` | NFA/DFA, determinisation, compressed membership |
//! | [`spanner`] | `spanner` | spans, markers, marked words, variable regexes |
//! | [`eval`] | `spanner-slp-core` | the paper's algorithms (Theorems 5.1, 7.1, 8.10) |
//! | [`baseline`] | `spanner-baseline` | decompress-and-solve product-DAG evaluation |
//! | [`workloads`] | `spanner-workloads` | document and query generators |
//!
//! ## Quickstart
//!
//! ```
//! use slp_spanner::prelude::*;
//!
//! // A log file of a million identical-looking lines, compressed to a few
//! // hundred grammar rules.
//! let line = b"level=info path=/health status=200\n";
//! let doc = slp_spanner::slp::families::power_word(line, 1_000_000);
//! assert!(doc.size() < 500);
//!
//! // A spanner that extracts the status code of each line.
//! let query = compile_query(".*status=x{[0-9]+}\n.*", line).unwrap();
//!
//! // Evaluate directly on the compressed document.
//! let spanner = SlpSpanner::new(&query, &doc).unwrap();
//! assert!(spanner.is_non_empty());
//! let first = spanner.enumerate().next().unwrap();
//! let x = query.variables().get("x").unwrap();
//! assert_eq!(first.get(x).unwrap().len(), 3);
//! ```
//!
//! ## Serving many queries over many documents
//!
//! The [`Service`](eval::service::Service) pools prepared queries and
//! documents, answers task-oriented requests from any number of threads
//! (`run`/`run_batch` take `&self`), reports per-request cache statistics,
//! and keeps the preprocessed matrices under a configurable byte budget:
//!
//! ```
//! use slp_spanner::prelude::*;
//!
//! let service = Service::builder().cache_budget(64 << 20).build();
//! let q = service.add_query(&compile_query(".*x{ab}.*", b"ab").unwrap());
//! let d = service.add_document(&slp_spanner::slp::families::power_word(b"ab", 1_000_000));
//! let response = service
//!     .run(&TaskRequest { query: q, doc: d, task: Task::Count })
//!     .unwrap();
//! assert_eq!(response.outcome.as_count(), Some(1_000_000));
//! assert!(!response.stats.cache_hit); // first touch built the matrices
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use slp;
pub use spanner;
pub use spanner_automata as automata;
pub use spanner_baseline as baseline;
pub use spanner_slp_core as eval;
pub use spanner_workloads as workloads;

/// The most common imports for application code.
pub mod prelude {
    pub use crate::eval::{
        compute::compute_all, count::count_results, enumerate::Enumerator, model_check,
        nonemptiness, DocumentId, Engine, EvalError, Evaluation, PreparedDocument, PreparedQuery,
        QueryId, RequestStats, Service, ServiceBuilder, ServiceStats, SlpSpanner, Task,
        TaskOutcome, TaskRequest, TaskResponse,
    };
    pub use crate::slp::{
        compress::{Bisection, Compressor, RePair},
        NormalFormSlp, ShardedDocument, SlpStats,
    };
    pub use crate::spanner::{
        regex::compile_deterministic as compile_query, Span, SpanTuple, SpannerAutomaton, Variable,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_types() {
        let doc = RePair::default().compress(b"abcabcabc");
        let query = compile_query(".*x{abc}.*", b"abc").unwrap();
        let spanner = SlpSpanner::new(&query, &doc).unwrap();
        assert_eq!(spanner.count(), 3);
        let stats = SlpStats::of(&doc);
        assert_eq!(stats.document_len, 9);
    }
}
